"""COVID-19 case study (paper Section 4.6, Figure 19).

Experts inspect the JHU dashboard's designed visualizations and write NL
queries for them; seq2vis must predict the matching VIS trees over the
COVID-19 table.  The paper reports 5/6 successes — the failure contains
"until today", a value the model cannot ground (it is not in the data or
the question as a literal).

We reproduce the protocol: six handwritten-style NL queries with gold
trees over the synthetic COVID database; the training set is nvBench
augmented with synthesized pairs from the COVID database (the model must
still *translate* the new handwritten phrasings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.nvbench import NVBench
from repro.core.synthesizer import NL2VISSynthesizer, SynthesizedPair
from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Order,
    QueryCore,
    VisQuery,
)
from repro.spider.covid import build_covid_database
from repro.spider.querygen import QueryGenerator
from repro.storage.schema import Database


def _attr(column: str, agg: Optional[str] = None) -> Attribute:
    return Attribute(column=column, table="covid_19", agg=agg)


@dataclass
class CaseQuery:
    """One expert NL query with its gold tree and expected outcome."""

    nl: str
    gold: VisQuery
    expected_success: bool
    note: str = ""


def case_study_queries() -> List[CaseQuery]:
    """The six JHU-dashboard-style expert queries (Figure 19).

    The paper's experts came from task T3, where they wrote NL for given
    charts — so their phrasing follows nvBench's register.  These six do
    the same (chart-type opener, column mentions, grouping/binning and
    aggregate clauses), which is the realistic test: new *database*, new
    *combinations*, familiar style.
    """
    date, country = _attr("date"), _attr("country")
    month_bin = Group(kind="binning", attr=date, bin_unit="month")
    by_country = Group(kind="grouping", attr=country)
    return [
        CaseQuery(
            nl="Draw a line chart about the date and daily cases of all "
               "covid 19s, bin the date by month, showing the combined "
               "daily cases.",
            gold=VisQuery("line", QueryCore(
                select=(date, _attr("daily_cases", "sum")), groups=(month_bin,),
            )),
            expected_success=True,
        ),
        CaseQuery(
            nl="Draw a bar chart about the country and deaths of all "
               "covid 19s, for each country, showing the total deaths.",
            gold=VisQuery("bar", QueryCore(
                select=(country, _attr("deaths", "sum")), groups=(by_country,),
            )),
            expected_success=True,
        ),
        CaseQuery(
            nl="Show the proportion of the country and confirmed of all "
               "covid 19s, for every country, showing the combined confirmed.",
            gold=VisQuery("pie", QueryCore(
                select=(country, _attr("confirmed", "sum")), groups=(by_country,),
            )),
            expected_success=True,
        ),
        CaseQuery(
            nl="Draw a bar chart about the country and recovered of all "
               "covid 19s, grouped by country, showing the total recovered, "
               "sort by recovered in descending order.",
            gold=VisQuery("bar", QueryCore(
                select=(country, _attr("recovered", "sum")),
                groups=(by_country,),
                order=Order("desc", _attr("recovered", "sum")),
            )),
            expected_success=True,
        ),
        CaseQuery(
            nl="Draw a line chart about the date and active cases of all "
               "covid 19s, bin the date by month, showing the overall "
               "active cases.",
            gold=VisQuery("line", QueryCore(
                select=(date, _attr("active_cases", "sum")), groups=(month_bin,),
            )),
            expected_success=True,
        ),
        CaseQuery(
            nl="Show the country and confirmed of all covid 19s until "
               "today, for each country, showing the combined confirmed.",
            gold=VisQuery("bar", QueryCore(
                select=(country, _attr("confirmed", "sum")),
                groups=(by_country,),
                filter=Filter(Comparison("<=", date, "2020-09-13")),
            )),
            expected_success=False,
            note='fails: "until today" cannot be grounded to a date literal',
        ),
    ]


_COVID_MEASURES = (
    "confirmed", "active_cases", "recovered", "deaths", "daily_cases",
)


def covid_training_pairs(
    database: Database, n_pairs: int = 80, seed: int = 29
) -> List[SynthesizedPair]:
    """Synthesize nvBench-style pairs over the COVID database.

    nvBench-scale benchmarks have dense coverage per schema; at our
    scale the equivalent is built explicitly: a *systematic* sweep over
    every (measure column × dimension) projection — so each of the six
    near-synonymous quantitative columns is well represented with both
    country groupings and date binnings — topped up with random
    querygen pairs for filters, sorts, and other clause variety.
    """
    rng = np.random.default_rng(seed)
    synthesizer = NL2VISSynthesizer(seed=seed, max_vis_per_query=3)
    pairs: List[SynthesizedPair] = []

    for measure in _COVID_MEASURES:
        phrase = measure.replace("_", " ")
        for dimension, dim_phrase in (("country", "country"), ("date", "date")):
            sql = f"SELECT {dimension}, {measure} FROM covid_19"
            nl = (
                f"What are the {dim_phrase} and {phrase} of all covid 19s?"
            )
            pairs.extend(
                synthesizer.synthesize(nl, sql, database, n_variants=6)
            )

    generator = QueryGenerator(database, rng)
    attempts = 0
    while len(pairs) < n_pairs and attempts < n_pairs * 10:
        attempts += 1
        generated = generator.generate()
        if generated is None:
            continue
        pairs.extend(synthesizer.synthesize(generated.nl, generated.query, database))
    return pairs[:n_pairs]


def attach_covid(bench: NVBench, n_pairs: int = 80, seed: int = 29) -> Database:
    """Add the COVID database and synthesized pairs to *bench*; returns
    the database."""
    database = build_covid_database()
    if database.name not in bench.corpus.databases:
        bench.corpus.databases[database.name] = database
        bench.pairs.extend(covid_training_pairs(database, n_pairs, seed))
    return database
