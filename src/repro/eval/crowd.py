"""Simulation of the expert/crowd validation study (Section 3.3).

The paper's study pipeline — HIT packing (one T1 + one T2 question),
expert single-rating vs crowd majority voting with 3-7 workers, the
inter-rater reliability sample, the T3 handwriting timer, and the
man-hour accounting — is fully reproducible; only the *human raters*
are not available offline.  We model them stochastically:

* a rater's T1 answer ("does this NL read handwritten?") degrades with
  machine artifacts (no back-translation smoothing) and with hardness
  (long/complex NL reads machine-generated, as participants reported);
* a rater's T2 answer ("does the NL match the vis?") degrades mainly
  for Filter/Join-heavy queries, which the paper found hard to verify
  against the rendered chart;
* experts are less noisy than crowd workers.

The rating scale is the paper's 5-point Likert (1 strongly disagree …
5 strongly agree).  Marginals are calibrated so the aggregate results
land near the published ones (Exp-T1 ~81-86% agree+, Exp-T2 ~87-89%
agree+), but the *mechanics* (majority vote, capped re-asks, outlier
boxplots, timing totals) are computed, not assumed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hardness import Hardness
from repro.core.synthesizer import SynthesizedPair

LIKERT = (1, 2, 3, 4, 5)
RATING_NAMES = {
    1: "strongly disagree",
    2: "disagree",
    3: "neutral",
    4: "agree",
    5: "strongly agree",
}


@dataclass
class StudyConfig:
    """Participant pool sizes and task parameters (paper values)."""

    n_experts: int = 23
    n_crowd_workers: int = 312
    min_votes: int = 3
    max_votes: int = 7
    sample_fraction: float = 0.10
    n_handwritten_controls: int = 100
    overlap_sample: int = 50
    seed: int = 17


@dataclass
class RatedPair:
    """One (NL, VIS) pair with its collected ratings."""

    pair: SynthesizedPair
    t1_expert: int
    t2_expert: int
    t1_crowd: int
    t2_crowd: int
    t1_crowd_votes: Tuple[int, ...]
    t2_crowd_votes: Tuple[int, ...]

    @property
    def low_rated(self) -> bool:
        """The Section 4.5 definition: rated (strongly) disagree in
        either task by either population."""
        return min(self.t1_expert, self.t2_expert, self.t1_crowd, self.t2_crowd) <= 2


@dataclass
class StudyResult:
    """All collected ratings plus the T3 timing samples."""

    rated: List[RatedPair] = field(default_factory=list)
    t3_times: List[float] = field(default_factory=list)

    def distribution(self, task: str, population: str) -> Dict[str, float]:
        """Fraction of pairs per Likert label (Figure 13 bars)."""
        attr = f"{task}_{population}"
        counts = Counter(getattr(item, attr) for item in self.rated)
        total = max(len(self.rated), 1)
        return {RATING_NAMES[k]: counts.get(k, 0) / total for k in LIKERT}

    def agree_fraction(self, task: str, population: str) -> float:
        """Fraction rated agree or strongly agree."""
        dist = self.distribution(task, population)
        return dist["agree"] + dist["strongly agree"]

    def low_rated_pairs(self) -> List[SynthesizedPair]:
        """Pairs rated (strongly) disagree by anyone (Section 4.5)."""
        return [item.pair for item in self.rated if item.low_rated]


class HumanStudySimulator:
    """Generates ratings for T1/T2, timings for T3, and the man-hour
    accounting of Section 3.3 / Figure 14."""

    def __init__(self, config: Optional[StudyConfig] = None):
        self.config = config or StudyConfig()

    # ----- rater models ----------------------------------------------------

    #: latent-quality model constants, calibrated so the aggregate
    #: marginals land near Figure 13's published numbers
    T1_BASE = 0.84
    T1_HARD_PENALTY = 0.14
    T1_NO_SMOOTHING_PENALTY = 0.06
    T1_MANUAL_PENALTY = 0.04
    T2_BASE = 0.92
    T2_FILTER_PENALTY = 0.22
    T2_JOIN_PENALTY = 0.18
    T2_EXTRA_HARD_PENALTY = 0.08
    #: fraction of synthesized pairs with a genuine defect (awkward NL
    #: or mismatched chart) that raters reliably notice
    DEFECT_RATE = 0.06
    DEFECT_PENALTY = 0.38
    EXPERT_NOISE = 0.11
    CROWD_NOISE = 0.19
    CROWD_OPTIMISM = 0.03

    def _t1_quality(self, pair: SynthesizedPair) -> float:
        """Latent probability that the NL reads handwritten."""
        quality = self.T1_BASE
        if not pair.back_translated:
            quality -= self.T1_NO_SMOOTHING_PENALTY
        if pair.hardness in (Hardness.HARD, Hardness.EXTRA_HARD):
            # Long/complex NL reads machine-generated (the most common
            # participant comment in the paper).
            quality -= self.T1_HARD_PENALTY
        if pair.manually_edited:
            quality -= self.T1_MANUAL_PENALTY
        return float(np.clip(quality, 0.05, 0.98))

    def _t2_quality(self, pair: SynthesizedPair) -> float:
        """Latent probability that the NL matches the vis for a rater."""
        quality = self.T2_BASE
        core = pair.vis.primary_core
        if core.filter is not None:
            # Filters are hard to verify from the rendered chart — the
            # paper found these falsely rated neutral/disagree.
            quality -= self.T2_FILTER_PENALTY
        if len(core.tables) > 1:
            quality -= self.T2_JOIN_PENALTY
        if pair.hardness is Hardness.EXTRA_HARD:
            quality -= self.T2_EXTRA_HARD_PENALTY
        return float(np.clip(quality, 0.05, 0.98))

    def _draw_rating(
        self, quality: float, noise: float, rng: np.random.Generator
    ) -> int:
        """Map a noisy latent quality onto the 5-point scale."""
        latent = quality + rng.normal(0.0, noise)
        if latent >= 0.88:
            return 5
        if latent >= 0.68:
            return 4
        if latent >= 0.48:
            return 3
        if latent >= 0.28:
            return 2
        return 1

    def _majority(self, votes: List[int], rng: np.random.Generator, draw) -> Tuple[int, List[int]]:
        """Majority voting with re-asks capped at ``max_votes``."""
        while True:
            counts = Counter(votes)
            rating, count = counts.most_common(1)[0]
            if count > len(votes) / 2 or len(votes) >= self.config.max_votes:
                if count <= len(votes) / 2:
                    # Still no majority at the cap: take the median.
                    rating = int(np.median(votes))
                return rating, votes
            votes = votes + [draw()]

    # ----- the study ---------------------------------------------------------

    def run(
        self, pairs: Sequence[SynthesizedPair], rng: Optional[np.random.Generator] = None
    ) -> StudyResult:
        """Sample ~10% of *pairs* and collect T1/T2 ratings plus T3 times."""
        rng = rng or np.random.default_rng(self.config.seed)
        sample_size = max(int(len(pairs) * self.config.sample_fraction), 1)
        indexes = rng.choice(len(pairs), size=min(sample_size, len(pairs)), replace=False)
        result = StudyResult()
        for index in indexes:
            pair = pairs[int(index)]
            t1_quality = self._t1_quality(pair)
            t2_quality = self._t2_quality(pair)
            if rng.random() < self.DEFECT_RATE:
                # A genuinely imperfect pair: every rater sees it.
                if rng.random() < 0.5:
                    t1_quality -= self.DEFECT_PENALTY
                else:
                    t2_quality -= self.DEFECT_PENALTY
            t1_expert = self._draw_rating(t1_quality, self.EXPERT_NOISE, rng)
            t2_expert = self._draw_rating(t2_quality, self.EXPERT_NOISE, rng)

            def crowd_vote(quality):
                return lambda: self._draw_rating(
                    quality + self.CROWD_OPTIMISM, self.CROWD_NOISE, rng
                )

            t1_votes = [crowd_vote(t1_quality)() for _ in range(self.config.min_votes)]
            t1_crowd, t1_votes = self._majority(t1_votes, rng, crowd_vote(t1_quality))
            t2_votes = [crowd_vote(t2_quality)() for _ in range(self.config.min_votes)]
            t2_crowd, t2_votes = self._majority(t2_votes, rng, crowd_vote(t2_quality))
            result.rated.append(
                RatedPair(
                    pair=pair,
                    t1_expert=t1_expert,
                    t2_expert=t2_expert,
                    t1_crowd=t1_crowd,
                    t2_crowd=t2_crowd,
                    t1_crowd_votes=tuple(t1_votes),
                    t2_crowd_votes=tuple(t2_votes),
                )
            )
        result.t3_times = list(self.t3_times(len(result.rated), rng))
        return result

    # ----- T3 and man-hours ---------------------------------------------------

    def t3_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Seconds to handwrite one NL query (Figure 14): log-normal
        calibrated to the paper's median 82s / mean 140s, clipped to the
        observed [37, 411] range."""
        times = rng.lognormal(mean=np.log(82.0), sigma=0.75, size=count)
        return np.clip(times, 37.0, 411.0)

    def manual_build_minutes(self, n_pairs: int, mean_seconds: float = 140.0) -> float:
        """Estimated minutes to write every NL query by hand."""
        return mean_seconds / 60.0 * n_pairs

    def synthesis_minutes(self, n_manual_variants: int, minutes_each: float = 1.0) -> float:
        """Minutes spent on the synthesizer's manual deletion revisions."""
        return n_manual_variants * minutes_each

    def manhour_reduction(self, bench_pairs: Sequence[SynthesizedPair]) -> Dict[str, float]:
        """The headline 5.7% man-hour figure (Section 3.3)."""
        n_pairs = len(bench_pairs)
        n_manual = sum(1 for pair in bench_pairs if pair.manually_edited)
        scratch = self.manual_build_minutes(n_pairs)
        ours = self.synthesis_minutes(n_manual)
        return {
            "scratch_minutes": scratch,
            "synthesizer_minutes": ours,
            "ratio": ours / scratch if scratch else 0.0,
            "speedup": scratch / ours if ours else float("inf"),
        }


def interrater_sample(
    result: StudyResult, sample: int = 50, seed: int = 3
) -> List[Tuple[int, List[int]]]:
    """Figure 12: for *sample* overlap pairs, the expert rating pooled
    with the crowd votes (the boxplot's per-x distribution)."""
    rng = np.random.default_rng(seed)
    size = min(sample, len(result.rated))
    picks = rng.choice(len(result.rated), size=size, replace=False)
    out = []
    for x_position, index in enumerate(sorted(picks.tolist()), start=1):
        rated = result.rated[index]
        ratings = [rated.t2_expert] + list(rated.t2_crowd_votes)
        out.append((x_position, ratings))
    return out
