"""Multi-dimension judged evaluation (VisEval-style).

The harness metrics (:mod:`repro.eval.metrics`) score a prediction by
*tree match* alone — does the predicted AST equal the gold AST.  That is
the paper's protocol, but it says nothing about whether the predicted
chart actually works downstream.  This module judges every prediction on
three further dimensions, each with a per-example verdict and a reason
string:

* **validity** — the spec round-trips through *both* renderer backends
  in :mod:`repro.vis` (Vega-Lite and ECharts) without raising, and the
  emitted spec is JSON-serializable.  A chart that cannot render is
  worthless no matter how close its tree is.
* **legality** — the chart is legal for its data under the Table-1
  rules (:func:`repro.core.vis_rules.validate_chart`): chart type,
  group/binning layout, aggregates, bin units, filter literals.
* **readability** — rule-based presentation checks on the *rendered*
  data: axis-label overflow, series-count cap, degenerate/exploded
  binning, and empty results.  Legal, renderable charts can still be
  unreadable; these rules are the cheap stand-in for VisEval's human
  readability judge.

Together with the classic **tree** dimension (match against a gold set,
so ambiguous questions judge fairly) this yields a four-dimension
verdict per example.  :func:`run_scenario` drives a
:class:`repro.pipeline.Pipeline` over a named workload from
:mod:`repro.eval.scenarios` and aggregates the verdicts into a
per-scenario × per-dimension accuracy matrix (:func:`judge_matrix`) —
the shape ``benchmarks/results/BENCH_eval.json`` tracks and
``python -m repro judge`` prints.  See ``docs/EVALUATION.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.vis_rules import validate_chart
from repro.eval.metrics import tree_match
from repro.grammar.ast_nodes import VisQuery
from repro.grammar.serialize import to_text
from repro.storage.executor import ExecutionCache
from repro.storage.schema import Database
from repro.vis.data import VisData, render_data

#: the four scoring dimensions, in report order
DIMENSIONS = ("tree", "validity", "legality", "readability")

#: dimensions that need no gold answer (serve-time judging)
GOLD_FREE_DIMENSIONS = ("validity", "legality", "readability")


@dataclass(frozen=True)
class DimensionVerdict:
    """One dimension's pass/fail for one example, with the why."""

    dimension: str
    ok: bool
    reason: str

    def to_json(self) -> dict:
        return {"ok": self.ok, "reason": self.reason}


@dataclass(frozen=True)
class ReadabilityRules:
    """Thresholds for the rule-based readability checks.

    The defaults follow common chart-lint practice: categorical axes
    stop being scannable past ~2 dozen ticks or very long labels,
    color palettes stop being distinguishable past ~12 classes, and a
    binned axis that collapses to one bucket (or explodes past 50)
    defeated its own purpose.
    """

    max_label_len: int = 24
    max_x_ticks: int = 24
    max_series: int = 12
    min_bins: int = 2
    max_bins: int = 50


DEFAULT_RULES = ReadabilityRules()


@dataclass(frozen=True)
class ReadabilityIssue:
    """One violated readability rule."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.code}: {self.message}"


def readability_issues(
    data: VisData,
    binned: bool = False,
    rules: ReadabilityRules = DEFAULT_RULES,
) -> List[ReadabilityIssue]:
    """Rule-based readability check over rendered chart data.

    Four rules, each independent (a chart can violate several):

    * ``empty-result`` — the chart renders no rows at all;
    * ``label-overflow`` — a categorical/ordinal x axis (or pie) whose
      labels are longer than ``max_label_len`` characters or that
      carries more than ``max_x_ticks`` ticks;
    * ``series-count`` — more color series (or pie slices) than
      ``max_series``;
    * ``bin-sanity`` — a binned chart whose data collapsed into fewer
      than ``min_bins`` buckets (the bin did nothing) or spread over
      more than ``max_bins`` (the axis is noise).

    ``binned`` says whether the judged query binned its x axis — the
    rendered rows alone cannot tell a binned axis from a plain one.
    """
    issues: List[ReadabilityIssue] = []
    if not data.rows:
        issues.append(
            ReadabilityIssue("empty-result", "chart renders zero rows")
        )
        return issues

    xs = data.x_values()
    categorical_x = data.vis_type == "pie" or data.x_channel in (
        "nominal", "ordinal"
    )
    if categorical_x:
        longest = max((len(str(x)) for x in xs), default=0)
        if longest > rules.max_label_len:
            issues.append(
                ReadabilityIssue(
                    "label-overflow",
                    f"longest x label is {longest} chars "
                    f"(> {rules.max_label_len})",
                )
            )
        elif len(xs) > rules.max_x_ticks:
            issues.append(
                ReadabilityIssue(
                    "label-overflow",
                    f"{len(xs)} x ticks (> {rules.max_x_ticks})",
                )
            )

    series = (
        data.series_names()
        if data.has_color
        else ([str(x) for x in xs] if data.vis_type == "pie" else [])
    )
    if len(series) > rules.max_series:
        issues.append(
            ReadabilityIssue(
                "series-count",
                f"{len(series)} series (> {rules.max_series})",
            )
        )

    if binned:
        if len(xs) < rules.min_bins:
            issues.append(
                ReadabilityIssue(
                    "bin-sanity",
                    f"binning produced {len(xs)} bucket(s) "
                    f"(< {rules.min_bins}); the bin is degenerate",
                )
            )
        elif len(xs) > rules.max_bins:
            issues.append(
                ReadabilityIssue(
                    "bin-sanity",
                    f"binning produced {len(xs)} buckets "
                    f"(> {rules.max_bins})",
                )
            )
    return issues


@dataclass
class ChartJudgement:
    """All dimension verdicts for one predicted chart."""

    verdicts: Dict[str, DimensionVerdict] = field(default_factory=dict)

    def ok(self, dimension: str) -> bool:
        verdict = self.verdicts.get(dimension)
        return verdict is not None and verdict.ok

    @property
    def all_ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts.values())

    def to_json(self) -> dict:
        return {
            "dimensions": {
                name: self.verdicts[name].to_json()
                for name in DIMENSIONS
                if name in self.verdicts
            }
        }


def _is_binned(query: VisQuery) -> bool:
    return any(
        group.kind == "binning" for group in query.primary_core.groups
    )


def judge_chart(
    query: Optional[VisQuery],
    database: Database,
    golds: Optional[Sequence[VisQuery]] = None,
    cache: Optional[ExecutionCache] = None,
    rules: ReadabilityRules = DEFAULT_RULES,
) -> ChartJudgement:
    """Judge one predicted chart on every applicable dimension.

    ``golds`` enables the **tree** dimension (ok when the prediction
    masked-tree-matches *any* gold — ambiguous questions carry a gold
    set); without golds only the three gold-free dimensions are judged,
    which is the serve-time shape (``POST /pipeline`` with
    ``"judge": true``).  A shared :class:`ExecutionCache` makes the
    validity and readability renders execute the query body once.
    """
    judgement = ChartJudgement()

    if golds is not None:
        matched = query is not None and any(
            tree_match(query, gold) for gold in golds
        )
        judgement.verdicts["tree"] = DimensionVerdict(
            "tree",
            matched,
            "matches a gold tree (masked)" if matched
            else "no gold tree matched",
        )

    if query is None:
        reason = "no parseable prediction"
        for name in GOLD_FREE_DIMENSIONS:
            judgement.verdicts[name] = DimensionVerdict(name, False, reason)
        return judgement

    judgement.verdicts["validity"] = _judge_validity(query, database, cache)
    judgement.verdicts["legality"] = _judge_legality(query, database)
    judgement.verdicts["readability"] = _judge_readability(
        query, database, cache, rules
    )
    return judgement


def _judge_validity(
    query: VisQuery, database: Database, cache: Optional[ExecutionCache]
) -> DimensionVerdict:
    """Render through both backends; both must produce JSON-clean specs."""
    from repro.vis import to_echarts, to_vega_lite

    for name, backend in (("vega-lite", to_vega_lite), ("echarts", to_echarts)):
        try:
            spec = backend(query, database, cache=cache)
            json.dumps(spec, default=str)
        except Exception as exc:  # noqa: BLE001 - the verdict is the point
            return DimensionVerdict(
                "validity", False, f"{name}: {type(exc).__name__}: {exc}"
            )
    return DimensionVerdict(
        "validity", True, "rendered via vega-lite and echarts"
    )


def _judge_legality(query: VisQuery, database: Database) -> DimensionVerdict:
    try:
        validation = validate_chart(query, database)
    except Exception as exc:  # noqa: BLE001
        return DimensionVerdict(
            "legality", False, f"validation error: {exc}"
        )
    if validation.ok:
        return DimensionVerdict("legality", True, "passes the Table-1 rules")
    return DimensionVerdict(
        "legality",
        False,
        f"{validation.status}: {', '.join(validation.codes())}",
    )


def _judge_readability(
    query: VisQuery,
    database: Database,
    cache: Optional[ExecutionCache],
    rules: ReadabilityRules,
) -> DimensionVerdict:
    try:
        data = render_data(query, database, cache=cache)
    except Exception as exc:  # noqa: BLE001
        return DimensionVerdict(
            "readability", False, f"render failed: {exc}"
        )
    issues = readability_issues(data, binned=_is_binned(query), rules=rules)
    if not issues:
        return DimensionVerdict("readability", True, "no rule violated")
    return DimensionVerdict(
        "readability", False, "; ".join(str(issue) for issue in issues)
    )


# ----- scenario runner ------------------------------------------------------


@dataclass
class JudgedExample:
    """One scenario example with its prediction and verdicts."""

    question: str
    db_name: str
    judgement: ChartJudgement
    predicted: Optional[str] = None
    #: the winning candidate came out of the repair stage
    repaired: bool = False
    session: Optional[str] = None
    turn: int = 0

    def to_json(self) -> dict:
        return {
            "question": self.question,
            "db": self.db_name,
            "predicted": self.predicted,
            "repaired": self.repaired,
            "session": self.session,
            "turn": self.turn,
            **self.judgement.to_json(),
        }


@dataclass
class ScenarioReport:
    """All judged examples of one scenario plus aggregation helpers."""

    scenario: str
    description: str
    examples: List[JudgedExample] = field(default_factory=list)
    #: summed pipeline counters over every pipeline-driven turn
    counters: Dict[str, int] = field(default_factory=dict)

    def accuracy(self, dimension: str) -> float:
        if not self.examples:
            return 0.0
        hits = sum(
            1 for example in self.examples if example.judgement.ok(dimension)
        )
        return hits / len(self.examples)

    @property
    def dimension_accuracy(self) -> Dict[str, float]:
        """The scenario's matrix row: dimension → accuracy."""
        return {name: self.accuracy(name) for name in DIMENSIONS}

    @property
    def repair_rate(self) -> float:
        """Fraction of judged predictions that came out of repair."""
        if not self.examples:
            return 0.0
        return sum(1 for e in self.examples if e.repaired) / len(self.examples)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "description": self.description,
            "examples": len(self.examples),
            "dimensions": {
                name: round(value, 4)
                for name, value in self.dimension_accuracy.items()
            },
            "repair_rate": round(self.repair_rate, 4),
            "counters": dict(self.counters),
            "verdicts": [example.to_json() for example in self.examples],
        }


def run_scenario(
    scenario,
    bench,
    translator=None,
    k: int = 3,
    max_examples: Optional[int] = None,
    tracer=None,
    rules: ReadabilityRules = DEFAULT_RULES,
    metrics=None,
) -> ScenarioReport:
    """Drive the staged pipeline over one scenario and judge every turn.

    *scenario* is a :class:`repro.eval.scenarios.Scenario` or a
    registered name; *bench* any object with ``pairs`` and
    ``databases`` (an :class:`repro.core.nvbench.NVBench`).  The
    default *translator* is the DeepEye baseline — deterministic and
    model-free, so the matrix is reproducible without a checkpoint;
    pass a ``NeuralTranslator`` to judge a trained model.

    Single-shot examples run the full pipeline with the database
    pinned.  Multi-turn examples (``example.edit`` set) apply the edit
    to the *previous turn's prediction* — the session's running spec —
    instead of re-translating from scratch, which is exactly the
    nvBench-2.0-style edit-session workload.  ``max_examples`` truncates
    at session boundaries so no session is judged half-way.
    """
    from repro.eval.scenarios import apply_edit, get_scenario
    from repro.pipeline import Budget, Generator, Pipeline

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if translator is None:
        from repro.serve import BaselineTranslator

        translator = BaselineTranslator.from_name("deepeye")

    pack = scenario.build(bench)
    examples = _truncate_at_session_boundary(pack.examples, max_examples)

    report = ScenarioReport(
        scenario=scenario.name, description=scenario.description
    )
    if not examples:
        return report

    cache = ExecutionCache()
    pipeline = Pipeline(
        pack.databases,
        Generator(translator),
        budget=Budget(k=k),
        cache=cache,
        tracer=tracer,
        metrics=metrics,
    )

    previous: Dict[str, Optional[VisQuery]] = {}
    for example in examples:
        repaired = False
        if example.edit is not None and example.session in previous:
            prior = previous[example.session]
            predicted = None
            if prior is not None:
                try:
                    predicted = apply_edit(prior, example.edit)
                except Exception:  # noqa: BLE001 - judged as a miss
                    predicted = None
        else:
            result = pipeline.run(example.question, example.db_name)
            predicted, repaired = _top_prediction(result)
            for name, value in result.counters.items():
                report.counters[name] = report.counters.get(name, 0) + value
        judgement = judge_chart(
            predicted,
            pack.databases[example.db_name],
            golds=example.golds,
            cache=cache,
            rules=rules,
        )
        report.examples.append(
            JudgedExample(
                question=example.question,
                db_name=example.db_name,
                judgement=judgement,
                predicted=to_text(predicted) if predicted is not None else None,
                repaired=repaired,
                session=example.session,
                turn=example.turn,
            )
        )
        if example.session is not None:
            previous[example.session] = predicted
    return report


def _truncate_at_session_boundary(examples, max_examples: Optional[int]):
    """First *max_examples* examples, but never cutting a session open."""
    if max_examples is None or len(examples) <= max_examples:
        return list(examples)
    kept = list(examples[:max_examples])
    boundary = max_examples
    while boundary < len(examples) and examples[boundary].turn > 0:
        kept.append(examples[boundary])
        boundary += 1
    return kept


def _top_prediction(result) -> Tuple[Optional[VisQuery], bool]:
    """The pipeline's best answer: top valid chart, else top parsed tree."""
    charts = result.charts
    if charts:
        return charts[0].tree, charts[0].repaired
    for candidate in result.candidates:
        if candidate.tree is not None:
            return candidate.tree, candidate.repaired
    return None, False


def judge_matrix(reports: Sequence[ScenarioReport]) -> Dict[str, object]:
    """The per-scenario × per-dimension accuracy matrix.

    The JSON shape published to ``BENCH_eval.json`` (under ``judged``)
    and printed by ``python -m repro judge``.
    """
    return {
        "dimensions": list(DIMENSIONS),
        "scenarios": {
            report.scenario: {
                "examples": len(report.examples),
                "dimensions": {
                    name: round(value, 4)
                    for name, value in report.dimension_accuracy.items()
                },
                "repair_rate": round(report.repair_rate, 4),
            }
            for report in reports
        },
    }


def format_matrix(reports: Sequence[ScenarioReport]) -> str:
    """Fixed-width text rendering of the accuracy matrix."""
    header = (
        f"{'scenario':<14s} {'n':>4s} "
        + " ".join(f"{name:>11s}" for name in DIMENSIONS)
        + f" {'repair%':>8s}"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        row = report.dimension_accuracy
        lines.append(
            f"{report.scenario:<14s} {len(report.examples):>4d} "
            + " ".join(f"{row[name]:>11.3f}" for name in DIMENSIONS)
            + f" {report.repair_rate:>8.3f}"
        )
    return "\n".join(lines)
