"""Setup shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools lacks the PEP 660 wheel backend (legacy
``pip install -e .`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
