"""Tests for the scenario registry, built-in workloads, and spec edits."""

from __future__ import annotations

import pytest

from repro.eval.scenarios import (
    ScenarioExample,
    ScenarioPack,
    SpecEdit,
    apply_edit,
    get_scenario,
    register_scenario,
    scenario_names,
    _REGISTRY,
)
from repro.grammar.ast_nodes import SetQuery, VisQuery
from repro.grammar.serialize import from_tokens


def _tree(text):
    return from_tokens(text.split())


BAR = (
    "visualize bar select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"standard", "ambiguous", "edit_session", "temporal"} <= set(
            scenario_names()
        )

    def test_get_scenario_carries_description(self):
        scenario = get_scenario("standard")
        assert scenario.name == "standard"
        assert scenario.description

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="standard"):
            get_scenario("missing")

    def test_register_scenario_round_trips(self):
        @register_scenario("tmp_test_scenario", "a throwaway")
        def build(bench):
            return ScenarioPack("tmp_test_scenario", [], {})

        try:
            assert get_scenario("tmp_test_scenario").build is build
            assert "tmp_test_scenario" in scenario_names()
        finally:
            del _REGISTRY["tmp_test_scenario"]


class TestSpecEdit:
    def test_vis_type_edit(self):
        edited = apply_edit(_tree(BAR), SpecEdit(kind="vis_type", vis_type="pie"))
        assert edited.vis_type == "pie"
        assert edited.body == _tree(BAR).body

    def test_add_order_edit_targets_the_measure(self):
        edited = apply_edit(_tree(BAR), SpecEdit(kind="add_order"))
        order = edited.body.order
        assert order is not None
        assert order.direction == "desc"
        assert order.attr == edited.body.select[1]

    def test_add_order_rejects_set_queries(self):
        core = _tree(BAR).body
        union = VisQuery("bar", SetQuery("union", core, core))
        with pytest.raises(ValueError, match="set-operation"):
            apply_edit(union, SpecEdit(kind="add_order"))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            apply_edit(_tree(BAR), SpecEdit(kind="rotate"))

    def test_instruction_is_natural_language(self):
        assert "pie" in SpecEdit(kind="vis_type", vis_type="pie").instruction()
        assert "descending" in SpecEdit(kind="add_order").instruction()


class TestBuiltinScenarios:
    @pytest.fixture(scope="class")
    def packs(self, small_nvbench):
        return {
            name: get_scenario(name).build(small_nvbench)
            for name in ("standard", "ambiguous", "edit_session", "temporal")
        }

    def test_every_pack_is_nonempty_and_routable(self, packs):
        for pack in packs.values():
            assert pack.examples, pack.name
            for example in pack.examples:
                assert example.db_name in pack.databases
                assert example.golds

    def test_standard_has_single_golds(self, packs):
        assert all(len(e.golds) == 1 for e in packs["standard"].examples)

    def test_ambiguous_has_multi_golds(self, packs):
        assert all(len(e.golds) >= 2 for e in packs["ambiguous"].examples)

    def test_edit_sessions_mutate_vis_type(self, packs):
        followups = [
            e for e in packs["edit_session"].examples if e.turn > 0
        ]
        assert followups
        for example in followups:
            assert example.edit is not None
            assert example.question == example.edit.instruction()

    def test_edit_session_golds_follow_the_edit(self, packs):
        by_session: dict = {}
        for example in packs["edit_session"].examples:
            by_session.setdefault(example.session, []).append(example)
        for examples in by_session.values():
            previous_gold = examples[0].golds[0]
            for example in examples[1:]:
                expected = apply_edit(previous_gold, example.edit)
                assert example.golds == (expected,)
                previous_gold = expected

    def test_temporal_includes_covid_and_binned_pairs(self, packs):
        pack = packs["temporal"]
        assert "covid_19" in pack.databases
        covid = [e for e in pack.examples if e.db_name == "covid_19"]
        assert len(covid) == 6  # the Figure-19 expert queries
        binned = [e for e in pack.examples if e.db_name != "covid_19"]
        assert binned, "benchmark temporal pairs generalize the case study"

    def test_builds_are_deterministic(self, small_nvbench, packs):
        again = get_scenario("standard").build(small_nvbench)
        assert again.examples == packs["standard"].examples

    def test_examples_are_frozen(self, packs):
        example = packs["standard"].examples[0]
        assert isinstance(example, ScenarioExample)
        with pytest.raises(Exception):
            example.question = "mutated"
