"""Integration tests for the end-to-end experiment harness."""

import numpy as np
import pytest

from repro.eval.harness import (
    EvaluationReport,
    ExperimentConfig,
    build_model,
    evaluate_model,
    make_datasets,
    train_and_evaluate,
)
from repro.eval.lowrated import low_rated_injection_experiment
from repro.eval.metrics import PairOutcome
from repro.core.hardness import Hardness
from repro.neural.trainer import TrainConfig


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        embed_dim=24,
        hidden_dim=32,
        train=TrainConfig(epochs=3, batch_size=16, lr=5e-3, patience=3),
    )


class TestDatasets:
    def test_split_sizes_and_shared_vocab(self, small_nvbench, tiny_config):
        train, val, test = make_datasets(small_nvbench, tiny_config)
        total = len(train) + len(val) + len(test)
        assert total == len(small_nvbench.pairs)
        assert train.in_vocab is val.in_vocab is test.in_vocab
        assert train.out_vocab is test.out_vocab

    def test_examples_carry_schema_tokens(self, small_nvbench, tiny_config):
        train, _, _ = make_datasets(small_nvbench, tiny_config)
        example = train.examples[0]
        assert "<sep>" in example.src_tokens
        sep = example.src_tokens.index("<sep>")
        schema = example.src_tokens[sep + 1 :]
        assert all("." in token for token in schema)


class TestTrainAndEvaluate:
    def test_full_protocol_runs(self, small_nvbench, tiny_config):
        model, report = train_and_evaluate(small_nvbench, "attention", tiny_config)
        assert isinstance(report, EvaluationReport)
        assert report.variant == "attention"
        assert len(report.outcomes) > 0
        assert 0.0 <= report.tree_accuracy <= 1.0
        assert 0.0 <= report.result_accuracy <= 1.0

    def test_report_aggregations_consistent(self, small_nvbench, tiny_config):
        _, report = train_and_evaluate(small_nvbench, "basic", tiny_config)
        by_hardness = report.tree_accuracy_by_hardness()
        # Weighted average of hardness buckets equals the overall rate.
        weights = {}
        for outcome in report.outcomes:
            weights[outcome.hardness.value] = weights.get(outcome.hardness.value, 0) + 1
        weighted = sum(
            by_hardness.get(level, 0.0) * count for level, count in weights.items()
        ) / len(report.outcomes)
        assert weighted == pytest.approx(report.tree_accuracy, abs=1e-9)

    def test_component_flags_populated(self, small_nvbench, tiny_config):
        _, report = train_and_evaluate(small_nvbench, "attention", tiny_config)
        components = report.component_accuracy()
        assert set(components) == {
            "select", "where", "join", "grouping", "binning", "order",
        }


class TestReportMath:
    def _report(self):
        report = EvaluationReport(variant="x")
        for vis_type, hardness, tree in [
            ("bar", Hardness.EASY, True),
            ("bar", Hardness.EASY, False),
            ("pie", Hardness.MEDIUM, True),
            ("pie", Hardness.HARD, False),
        ]:
            report.outcomes.append(PairOutcome(
                vis_type=vis_type, hardness=hardness, tree=tree, result=tree,
                predicted_type=vis_type if tree else None,
            ))
        return report

    def test_overall_rate(self):
        assert self._report().tree_accuracy == 0.5

    def test_by_hardness(self):
        by_hardness = self._report().tree_accuracy_by_hardness()
        assert by_hardness["easy"] == 0.5
        assert by_hardness["medium"] == 1.0
        assert by_hardness["hard"] == 0.0

    def test_matrix_cells(self):
        matrix = self._report().tree_accuracy_matrix()
        assert matrix[("bar", "easy")] == 0.5
        assert matrix[("pie", "medium")] == 1.0

    def test_type_component_includes_all(self):
        acc = self._report().vis_type_component_accuracy()
        assert acc["all"] == 0.5
        assert acc["bar"] == 0.5


class TestLowRatedInjection:
    def test_sweep_produces_all_cells(self, small_nvbench, tiny_config):
        low_rated = small_nvbench.pairs[:10]
        result = low_rated_injection_experiment(
            small_nvbench,
            low_rated,
            variants=("basic",),
            levels=(0, 100),
            config=tiny_config,
        )
        assert set(result.accuracies) == {("basic", 0), ("basic", 100)}
        relative = result.relative()
        if result.accuracies[("basic", 0)] > 0:
            assert relative[("basic", 0)] == pytest.approx(1.0)
