"""Tests for the ``repro.serve`` inference service.

Covers the shared translate path (batched vs. single determinism), the
model registry, the micro-batcher's coalescing/backpressure/drain
behaviour, the LRU response cache, the perf histogram, and the HTTP
server end to end over real sockets.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.neural.data import build_dataset, encode_source_batch
from repro.neural.model import Seq2Vis
from repro.perf import Histogram
from repro.serve import (
    BackgroundServer,
    BaselineTranslator,
    DecodeConfig,
    EncoderCache,
    InferenceServer,
    LoadGenerator,
    MicroBatcher,
    ModelRegistry,
    NeuralTranslator,
    QueueFullError,
    ResponseCache,
    ServeError,
    ServerConfig,
    ServerDrainingError,
    Translator,
    TranslateResult,
    UnknownModelError,
    normalize_question,
    render_spec,
    translate_batch,
    translate_question,
)

QUESTIONS = [
    "how many rows per category?",
    "show the average price by type",
    "total amount for each name, sorted descending",
    "plot a pie of counts per status",
    "what is the number of items per year?",
    "compare the minimum score across groups",
]


@pytest.fixture(scope="module")
def stack(small_nvbench):
    """A dataset, a deterministic model, and the benchmark databases."""
    dataset = build_dataset(small_nvbench.pairs[:60], small_nvbench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention", 16, 24, seed=2
    )
    return model, dataset, small_nvbench.databases


@pytest.fixture(scope="module")
def registry(stack):
    model, dataset, _ = stack
    reg = ModelRegistry()
    reg.register(
        "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
    )
    reg.register_baselines()
    reg.set_default("attn")
    return reg


@pytest.fixture(scope="module")
def running(registry, stack):
    """One shared server over real sockets for the e2e tests."""
    _, _, databases = stack
    server = InferenceServer(
        registry,
        databases,
        ServerConfig(port=0, max_batch_size=4, flush_interval=0.02),
    )
    with BackgroundServer(server) as background:
        yield server, background.client()


class TestTranslatePath:
    def test_batched_matches_single(self, stack):
        model, dataset, databases = stack
        names = sorted(databases)
        requests = [
            (question, databases[names[i % len(names)]])
            for i, question in enumerate(QUESTIONS)
        ]
        batched = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests
        )
        for (question, database), via_batch in zip(requests, batched):
            alone = translate_question(
                model, dataset.in_vocab, dataset.out_vocab, question, database
            )
            assert via_batch.tokens == alone.tokens
            assert via_batch.vis_text == alone.vis_text
            assert via_batch.db_name == database.name

    def test_padding_is_exact_at_model_level(self, stack):
        model, dataset, _ = stack
        examples = dataset.examples[:3]
        token_lists = [e.src_tokens for e in examples]
        assert len({len(tokens) for tokens in token_lists}) > 1, (
            "fixture should exercise real padding"
        )
        batch = encode_source_batch(
            token_lists, dataset.in_vocab, dataset.out_vocab
        )
        together = model.greedy_decode(
            batch, dataset.out_vocab.bos_id, dataset.out_vocab.eos_id
        )
        for tokens, expected in zip(token_lists, together):
            single = encode_source_batch(
                [tokens], dataset.in_vocab, dataset.out_vocab
            )
            alone = model.greedy_decode(
                single, dataset.out_vocab.bos_id, dataset.out_vocab.eos_id
            )[0]
            assert alone == expected

    def test_empty_batch_rejected(self, stack):
        model, dataset, _ = stack
        assert translate_batch(model, dataset.in_vocab, dataset.out_vocab, []) == []
        with pytest.raises(ValueError):
            encode_source_batch([], dataset.in_vocab, dataset.out_vocab)

    def test_normalize_question(self):
        assert normalize_question("  Show\tME   prices ") == "show me prices"
        assert normalize_question("a b") == normalize_question("A  B")

    def test_render_spec_all_formats(self, flight_db):
        baseline = BaselineTranslator.from_name("deepeye")
        result = baseline.translate_requests(
            [("show the price for each origin", flight_db)]
        )[0]
        assert result.ok, result.error
        assert render_spec(result, flight_db, "text") == result.vis_text
        assert "$schema" in render_spec(result, flight_db, "vega-lite")
        assert "series" in render_spec(result, flight_db, "echarts")
        assert "data" in render_spec(result, flight_db, "plotly")
        assert isinstance(render_spec(result, flight_db, "ascii"), str)
        assert "ggplot" in render_spec(result, flight_db, "ggplot")
        with pytest.raises(ValueError):
            render_spec(result, flight_db, "png")

    def test_render_spec_none_for_failed_parse(self, flight_db):
        failed = TranslateResult(
            question="q", db_name="flights", tokens=["nonsense"],
            error="boom",
        )
        assert render_spec(failed, flight_db, "vega-lite") is None


class TestRegistry:
    def test_first_registration_becomes_default(self, stack):
        model, dataset, _ = stack
        reg = ModelRegistry()
        assert reg.default_model is None
        reg.register(
            "m", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        assert reg.default_model == "m"
        assert "m" in reg and len(reg) == 1

    def test_hot_swap_replaces_instance(self, stack):
        model, dataset, _ = stack
        reg = ModelRegistry()
        first = NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        second = NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        reg.register("m", first)
        reg.register("m", second)
        assert reg.get("m") is second
        assert len(reg) == 1

    def test_unknown_model_raises(self):
        reg = ModelRegistry()
        with pytest.raises(UnknownModelError):
            reg.get("missing")
        with pytest.raises(UnknownModelError):
            reg.set_default("missing")
        with pytest.raises(UnknownModelError):
            BaselineTranslator.from_name("not-a-baseline")

    def test_unregister_moves_default(self, stack):
        model, dataset, _ = stack
        reg = ModelRegistry()
        reg.register(
            "a", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        reg.register_baselines()
        reg.set_default("a")
        reg.unregister("a")
        assert reg.default_model in reg.names()
        assert "a" not in reg

    def test_warm_touches_every_model(self, registry, stack):
        _, _, databases = stack
        timings = registry.warm(databases)
        assert set(timings) == set(registry.names())
        assert all(seconds >= 0 for seconds in timings.values())

    def test_baseline_translator_reports_no_prediction(self, flight_db):
        baseline = BaselineTranslator("nl4dv", lambda nl, db: None)
        result = baseline.translate_requests([("??", flight_db)])[0]
        assert not result.ok
        assert "no visualization" in result.error

    def test_info_shapes(self, registry):
        info = registry.info()
        assert info["attn"]["kind"] == "neural"
        assert info["deepeye"]["kind"] == "baseline"


class TestResponseCache:
    def test_key_normalizes_question(self):
        a = ResponseCache.key_of("m", "db", "Show  Prices", "text")
        b = ResponseCache.key_of("m", "db", "show prices", "text")
        c = ResponseCache.key_of("m", "db", "show prices", "vega-lite")
        assert a == b
        assert a != c

    def test_lru_eviction(self):
        cache = ResponseCache(maxsize=2)
        k1, k2, k3 = (("m", "d", str(i), "text") for i in range(3))
        cache.put(k1, {"n": 1})
        cache.put(k2, {"n": 2})
        assert cache.get(k1) == {"n": 1}  # refresh k1
        cache.put(k3, {"n": 3})           # evicts k2
        assert cache.get(k2) is None
        assert cache.get(k1) == {"n": 1}
        assert cache.get(k3) == {"n": 3}
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["hits"] == 3 and stats["misses"] == 1

    def test_disabled_cache_never_stores(self):
        cache = ResponseCache(maxsize=0)
        key = ResponseCache.key_of("m", "d", "q", "text")
        cache.put(key, {"n": 1})
        assert cache.get(key) is None
        assert len(cache) == 0


class TestHistogram:
    def test_buckets_and_percentiles(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 5.0, 5.0, 50.0):
            hist.observe(value)
        assert hist.buckets() == {"le_1": 1, "le_10": 2, "le_inf": 1}
        assert hist.count == 4
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.percentile(0) == 0.5
        assert hist.percentile(100) == 50.0
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["p50"] in (5.0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram((10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0,)).percentile(150)

    def test_empty(self):
        hist = Histogram((1.0,))
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0


class _Recorder:
    """Batch handler that records group sizes."""

    def __init__(self, delay: float = 0.0):
        self.sizes = []
        self.delay = delay

    def __call__(self, key, items):
        if self.delay:
            time.sleep(self.delay)
        self.sizes.append(len(items))
        return [f"{key}:{item}" for item in items]


class TestMicroBatcher:
    def test_coalesces_concurrent_submits(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(
                recorder, max_batch_size=8, flush_interval=0.05
            )
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit("m", i) for i in range(6))
            )
            await batcher.drain()
            return recorder, results

        recorder, results = asyncio.run(scenario())
        assert results == [f"m:{i}" for i in range(6)]
        assert max(recorder.sizes) > 1, "no coalescing happened"

    def test_groups_by_key(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(
                recorder, max_batch_size=8, flush_interval=0.05
            )
            await batcher.start()
            results = await asyncio.gather(
                batcher.submit("a", 1),
                batcher.submit("b", 2),
                batcher.submit("a", 3),
            )
            await batcher.drain()
            return results

        assert asyncio.run(scenario()) == ["a:1", "b:2", "a:3"]

    def test_queue_full_rejects(self):
        async def scenario():
            batcher = MicroBatcher(
                _Recorder(), max_batch_size=1, max_queue_depth=2
            )
            # Flusher never started: the queue can only fill up.
            waiting = [
                asyncio.ensure_future(batcher.submit("m", i)) for i in range(2)
            ]
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError):
                await batcher.submit("m", 99)
            for task in waiting:
                task.cancel()
            return True

        assert asyncio.run(scenario())

    def test_drain_finishes_accepted_work_then_rejects(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(
                recorder, max_batch_size=4, flush_interval=0.01
            )
            await batcher.start()
            pending = asyncio.ensure_future(batcher.submit("m", "x"))
            await asyncio.sleep(0)
            await batcher.drain()
            assert pending.result() == "m:x"
            with pytest.raises(ServerDrainingError):
                await batcher.submit("m", "y")
            return True

        assert asyncio.run(scenario())

    def test_handler_exception_propagates(self):
        async def scenario():
            def broken(key, items):
                raise UnknownModelError("nope")

            batcher = MicroBatcher(broken, flush_interval=0.01)
            await batcher.start()
            with pytest.raises(UnknownModelError):
                await batcher.submit("m", 1)
            await batcher.drain()
            return True

        assert asyncio.run(scenario())

    def test_per_request_timeout(self):
        async def scenario():
            batcher = MicroBatcher(
                _Recorder(delay=0.5), flush_interval=0.001
            )
            await batcher.start()
            with pytest.raises(asyncio.TimeoutError):
                await batcher.submit("m", 1, timeout=0.05)
            await batcher.drain()
            return True

        assert asyncio.run(scenario())

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            MicroBatcher(_Recorder(), max_batch_size=0)


class TestServerEndToEnd:
    def test_healthz_shape(self, running):
        server, client = running
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["default_model"] == "attn"
        assert set(health["models"]) >= {"attn", "deepeye", "nl4dv"}
        assert health["databases"] == len(server.databases)
        assert health["queue_depth"] >= 0
        assert health["uptime_seconds"] > 0

    def test_metrics_shape(self, running, stack):
        _, _, databases = stack
        _, client = running
        client.translate(QUESTIONS[0], sorted(databases)[0], use_cache=False)
        metrics = client.metrics()
        for key in (
            "uptime_seconds", "counters", "latency_ms", "batch_size",
            "response_cache", "execution_cache", "queue", "avg_batch_size",
        ):
            assert key in metrics, key
        assert metrics["latency_ms"]["count"] > 0
        assert "le_inf" in metrics["latency_ms"]["buckets"]
        assert metrics["counters"]["requests_total"] > 0
        assert metrics["queue"]["capacity"] == 128

    def test_batched_server_matches_serial_reference(self, running, stack):
        model, dataset, databases = stack
        server, client = running
        names = sorted(databases)
        requests = [
            {
                "question": f"{question} ({index})",
                "db": names[index % len(names)],
                "use_cache": False,
            }
            for index, question in enumerate(QUESTIONS * 2)
        ]
        expected = [
            translate_question(
                model,
                dataset.in_vocab,
                dataset.out_vocab,
                request["question"],
                databases[request["db"]],
            )
            for request in requests
        ]
        generator = LoadGenerator(client, concurrency=6)
        report, responses = generator.run(requests)
        assert report.errors == 0, report.by_status
        for request, response, reference in zip(requests, responses, expected):
            assert response is not None
            assert response["tokens"] == reference.tokens, request
            assert response["vis"] == reference.vis_text
            assert response["cached"] is False
        metrics = client.metrics()
        assert metrics["batch_size"]["count"] > 0
        assert metrics["counters"]["batched_requests"] >= len(requests)

    def test_response_cache_round_trip(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        first = client.translate("how many rows per category today?", db)
        again = client.translate("How many  rows per category today?", db)
        assert first["cached"] is False
        assert again["cached"] is True
        assert again["tokens"] == first["tokens"]

    def test_baseline_model_with_rendering(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.translate(
            "show everything", db, model="deepeye", fmt="vega-lite"
        )
        if response["error"] is None:
            assert response["spec"]["$schema"].startswith("https://vega")
        assert response["model"] == "deepeye"
        assert response["format"] == "vega-lite"

    def test_http_errors(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        with pytest.raises(ServeError) as err:
            client.translate("q?", "no-such-db")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.translate("q?", db, model="no-such-model")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.translate("q?", db, fmt="png")
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.translate("   ", db)
        assert err.value.status == 400
        assert client.request("GET", "/translate")[0] == 405
        assert client.request("POST", "/healthz")[0] == 405
        assert client.request("GET", "/nope")[0] == 404
        status, body = client.request("POST", "/translate", None)
        assert status == 400 and "JSON" in body["error"]

    def test_queue_overflow_returns_429(self, stack):
        _, _, databases = stack

        class Slow(Translator):
            kind = "slow"

            def translate_requests(self, requests, decode=None,
                                   encoder_cache=None, model_name=""):
                time.sleep(0.3)
                return [
                    TranslateResult(question=q, db_name=d.name, error="slow")
                    for q, d in requests
                ]

        registry = ModelRegistry()
        registry.register("slow", Slow())
        server = InferenceServer(
            registry,
            databases,
            ServerConfig(
                port=0, max_batch_size=1, max_queue_depth=1,
                flush_interval=0.001, cache_size=0,
            ),
        )
        db = sorted(databases)[0]
        with BackgroundServer(server) as background:
            client = background.client()
            generator = LoadGenerator(client, concurrency=6)
            report, _ = generator.run(
                [
                    {"question": f"q {i}", "db": db, "use_cache": False}
                    for i in range(6)
                ]
            )
        assert report.by_status.get(429, 0) >= 1, report.by_status
        assert report.by_status.get(200, 0) >= 1, report.by_status

    def test_graceful_drain_completes_inflight(self, registry, stack):
        _, _, databases = stack
        server = InferenceServer(
            registry, databases, ServerConfig(port=0, cache_size=0)
        )
        background = BackgroundServer(server)
        background.start()
        client = background.client()
        db = sorted(databases)[0]
        assert client.translate("count rows per type", db)["question"]
        background.stop()
        assert server.batcher.draining
        with pytest.raises(Exception):
            client.healthz()

class TestDecodeConfig:
    def test_defaults_are_greedy(self):
        config = DecodeConfig()
        assert config.is_greedy
        assert config.cache_tag() == "greedy"

    def test_beam_tags_are_distinct(self):
        assert DecodeConfig(beam_width=4).cache_tag() != "greedy"
        assert (
            DecodeConfig(beam_width=4).cache_tag()
            != DecodeConfig(beam_width=2).cache_tag()
        )
        assert (
            DecodeConfig(beam_width=4, num_candidates=3).cache_tag()
            != DecodeConfig(beam_width=4).cache_tag()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DecodeConfig(beam_width=0)
        with pytest.raises(ValueError):
            DecodeConfig(beam_width=2, num_candidates=3)
        with pytest.raises(ValueError):
            DecodeConfig(num_candidates=0)

    def test_response_cache_key_separates_decode_and_precision(self):
        greedy = ResponseCache.key_of("m", "db", "q?", "text")
        beam = ResponseCache.key_of(
            "m", "db", "q?", "text", decode=DecodeConfig(beam_width=4).cache_tag()
        )
        int8 = ResponseCache.key_of("m", "db", "q?", "text", precision="int8")
        assert len({greedy, beam, int8}) == 3


class TestEncoderCache:
    def test_hits_after_first_encode(self, stack):
        model, dataset, databases = stack
        names = sorted(databases)
        cache = EncoderCache()
        requests = [
            (question, databases[names[i % len(names)]])
            for i, question in enumerate(QUESTIONS[:4])
        ]
        plain = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests
        )
        first = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests,
            encoder_cache=cache, model_name="attn",
        )
        assert cache.stats()["misses"] == len(requests)
        assert cache.stats()["hits"] == 0
        second = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests,
            encoder_cache=cache, model_name="attn",
        )
        assert cache.stats()["hits"] == len(requests)
        for a, b, c in zip(plain, first, second):
            assert a.tokens == b.tokens == c.tokens

    def test_mixed_hit_miss_batch_is_exact(self, stack):
        model, dataset, databases = stack
        names = sorted(databases)
        cache = EncoderCache()
        db = databases[names[0]]
        warm = [(QUESTIONS[0], db)]
        translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, warm,
            encoder_cache=cache, model_name="attn",
        )
        mixed = [(QUESTIONS[0], db), (QUESTIONS[1], db), (QUESTIONS[2], db)]
        cached = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, mixed,
            encoder_cache=cache, model_name="attn",
        )
        plain = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, mixed
        )
        assert [r.tokens for r in cached] == [r.tokens for r in plain]
        assert cache.stats()["hits"] >= 1

    def test_beam_decode_reuses_greedy_encodings(self, stack):
        model, dataset, databases = stack
        db = databases[sorted(databases)[0]]
        cache = EncoderCache()
        requests = [(QUESTIONS[0], db)]
        translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests,
            encoder_cache=cache, model_name="attn",
        )
        beamed = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests,
            decode=DecodeConfig(beam_width=3), encoder_cache=cache,
            model_name="attn",
        )
        assert cache.stats()["hits"] == 1
        reference = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests,
            decode=DecodeConfig(beam_width=3),
        )
        assert [r.tokens for r in beamed] == [r.tokens for r in reference]

    def test_lru_eviction_and_invalidate(self):
        import numpy as np

        cache = EncoderCache(maxsize=2)
        entry = EncoderCache.entry_of(
            np.ones((3, 4)), np.ones(2), np.ones(2), np.ones(3)
        )
        cache.put(EncoderCache.key_of("m1", "db", ["a"]), entry)
        cache.put(EncoderCache.key_of("m2", "db", ["b"]), entry)
        cache.put(EncoderCache.key_of("m2", "db", ["c"]), entry)
        assert len(cache) == 2
        assert cache.get(EncoderCache.key_of("m1", "db", ["a"])) is None
        assert cache.invalidate_model("m2") == 2
        assert len(cache) == 0
        assert cache.stats()["resident_bytes"] == 0

    def test_disabled_cache_never_stores(self):
        import numpy as np

        cache = EncoderCache(maxsize=0)
        entry = EncoderCache.entry_of(
            np.ones((3, 4)), np.ones(2), np.ones(2), np.ones(3)
        )
        key = EncoderCache.key_of("m", "db", ["a"])
        cache.put(key, entry)
        assert len(cache) == 0
        assert cache.get(key) is None


class TestBeamServing:
    def test_beam_request_fields(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.translate(
            "beam me the counts per type", db, beam_width=3, candidates=2,
            use_cache=False,
        )
        assert response["beam_width"] == 3
        assert response["precision"] in ("float32", "float64")
        assert isinstance(response.get("candidates"), list)
        assert 1 <= len(response["candidates"]) <= 2
        top = response["candidates"][0]
        assert set(top) >= {"tokens", "score"}
        assert top["tokens"] == response["tokens"]

    def test_greedy_response_has_no_candidates(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.translate(
            "just the greedy counts", db, use_cache=False
        )
        assert response["beam_width"] == 1
        assert "candidates" not in response

    def test_beam_and_greedy_cache_separately(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        question = "distinct cache entries per decode config?"
        greedy = client.translate(question, db)
        beamed = client.translate(question, db, beam_width=4)
        assert greedy["cached"] is False
        assert beamed["cached"] is False  # beam never reads greedy's entry
        assert client.translate(question, db, beam_width=4)["cached"] is True

    def test_bad_beam_params_rejected(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        with pytest.raises(ServeError) as err:
            client.translate("q?", db, beam_width=0)
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.translate("q?", db, beam_width=999)
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.translate("q?", db, beam_width=2, candidates=3)
        assert err.value.status == 400

    def test_encoder_cache_in_metrics(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        client.translate("metrics see the encoder cache", db, use_cache=False)
        metrics = client.metrics()
        assert "encoder_cache" in metrics
        assert metrics["encoder_cache"]["maxsize"] == 256

    def test_hot_swap_invalidates_both_caches(self, stack):
        model, dataset, databases = stack
        registry = ModelRegistry()
        registry.register(
            "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        server = InferenceServer(registry, databases, ServerConfig(port=0))
        db = databases[sorted(databases)[0]]
        # Prime both caches through the real batch path.
        results = server._run_group(
            "attn\x00greedy", [("how many rows?", db, DecodeConfig())]
        )
        key = ResponseCache.key_of("attn", db.name, "how many rows?", "text")
        server.response_cache.put(key, {"tokens": results[0].tokens})
        assert len(server.encoder_cache) == 1
        assert len(server.response_cache) == 1
        registry.register(
            "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        assert len(server.encoder_cache) == 0
        assert len(server.response_cache) == 0

    def test_unregister_also_invalidates(self, stack):
        model, dataset, databases = stack
        registry = ModelRegistry()
        registry.register(
            "attn", NeuralTranslator(model, dataset.in_vocab, dataset.out_vocab)
        )
        server = InferenceServer(registry, databases, ServerConfig(port=0))
        db = databases[sorted(databases)[0]]
        server._run_group(
            "attn\x00greedy", [("count the rows", db, DecodeConfig())]
        )
        assert len(server.encoder_cache) == 1
        registry.unregister("attn")
        assert len(server.encoder_cache) == 0


class TestPipelineEndpoint:
    def test_pinned_database(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.pipeline(
            "how many rows per category?", db=db, model="deepeye", k=3
        )
        assert response["db"] == db
        assert response["routed"] is False
        assert response["model"] == "deepeye"
        assert response["candidates"]
        assert response["charts"], "baseline should yield a valid chart"
        assert set(response["stage_timings_ms"]) == {
            "route", "generate", "verify", "execute", "repair"
        }
        assert response["timed_out"] is None
        top = response["candidates"][0]
        assert set(top) >= {"tokens", "score", "status", "violations", "execution"}

    def test_routes_when_db_omitted(self, running):
        _, client = running
        response = client.pipeline(
            "how many rows per category?", model="deepeye"
        )
        assert response["routed"] is True
        assert response["routes"], "route evidence is returned"
        assert response["db"] == response["routes"][0]["db"]

    def test_budget_fields_round_trip(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.pipeline(
            "counts per type", db=db, model="deepeye",
            k=2, budget_ms=30000, max_rows=5, repair=False,
        )
        budget = response["budget"]
        assert budget["k"] == 2
        assert budget["total_ms"] == 30000
        assert budget["max_rows"] == 5
        assert budget["repair"] is False
        assert response["counters"]["repairs_attempted"] == 0

    def test_error_statuses(self, running):
        _, client = running
        with pytest.raises(ServeError) as err:
            client.pipeline("q?", db="no_such_db")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.pipeline("q?", model="no_such_model")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.pipeline("")
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.pipeline("q?", k=0)
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.pipeline("q?", budget_ms=-5)
        assert err.value.status == 400

    def test_pipeline_counters_in_metrics(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        client.pipeline("metrics see the pipeline", db=db, model="deepeye")
        counters = client.metrics()["counters"]
        assert counters.get("pipeline_requests", 0) >= 1
        assert counters.get("pipeline_executions", 0) >= 1
        assert counters.get("pipeline_verify_pass", 0) >= 1
        assert counters.get("pipeline_born_legal_total", 0) >= 1

    def test_judge_block_on_request(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.pipeline(
            "how many rows per category?", db=db, model="deepeye", judge=True
        )
        assert response["charts"], "need a valid chart to judge"
        verdicts = response["judge"]
        assert len(verdicts) == len(response["charts"])
        for entry in verdicts:
            assert set(entry) >= {"vis", "repaired", "dimensions"}
            # serve-time judging is gold-free: no tree dimension
            assert set(entry["dimensions"]) == {
                "validity", "legality", "readability"
            }
            for verdict in entry["dimensions"].values():
                assert set(verdict) == {"ok", "reason"}
        counters = client.metrics()["counters"]
        assert counters.get("pipeline_judged", 0) >= 1

    def test_judge_defaults_off(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        response = client.pipeline("count rows", db=db, model="deepeye")
        assert "judge" not in response

    def test_judge_must_be_boolean(self, running, stack):
        _, _, databases = stack
        _, client = running
        db = sorted(databases)[0]
        with pytest.raises(ServeError) as err:
            client._checked(
                "POST", "/pipeline",
                {"question": "q?", "db": db, "model": "deepeye",
                 "judge": "yes"},
            )
        assert err.value.status == 400
