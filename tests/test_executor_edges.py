"""Edge-case tests for the executor and SQL helpers beyond the main
suite: LIKE metacharacters, mixed-type comparisons, empty groups, and
aggregate corner cases."""

import pytest

from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Like,
    QueryCore,
    SQLQuery,
)
from repro.storage.executor import ExecutionError, Executor, _compare, _like_match
from repro.storage.schema import Column, Database, Table


def build_db(rows, columns=None):
    columns = columns or (
        Column("name", "C"), Column("value", "Q"), Column("tag", "C"),
    )
    table = Table("t", tuple(columns))
    table.extend(rows)
    db = Database("edge")
    db.add_table(table)
    return db


def attr(column, agg=None):
    return Attribute(column=column, table="t", agg=agg)


class TestLikeMatching:
    def test_percent_wildcard(self):
        assert _like_match("hello world", "hello%")
        assert _like_match("hello world", "%world")
        assert not _like_match("hello", "%zzz%")

    def test_underscore_single_char(self):
        assert _like_match("cat", "c_t")
        assert not _like_match("cart", "c_t")

    def test_regex_metacharacters_are_literal(self):
        assert _like_match("a.b", "a.b")
        assert not _like_match("axb", "a.b")
        assert _like_match("price (usd)", "%(usd)%")
        assert not _like_match("pricexusd", "%(usd)%")

    def test_case_insensitive(self):
        assert _like_match("Hello", "hello%")


class TestCompare:
    def test_none_never_matches(self):
        assert not _compare("=", None, 1)
        assert not _compare("!=", None, 1)
        assert not _compare(">", 1, None)

    def test_mixed_types_only_equality(self):
        assert _compare("=", 5, "5")
        assert _compare("!=", 5, "6")
        assert not _compare(">", 5, "4")

    def test_numeric_ordering(self):
        assert _compare("<=", 3, 3)
        assert _compare(">=", 3.5, 3)
        assert not _compare("<", 3, 3)


class TestExecutorEdges:
    def test_null_values_skipped_in_aggregates(self):
        db = build_db([("a", 1, "x"), ("b", None, "x"), ("c", 5, "y")])
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("value", agg="avg"),),
        )))
        assert result.rows[0][0] == pytest.approx(3.0)

    def test_count_column_ignores_nulls_count_star_does_not(self):
        db = build_db([("a", 1, "x"), ("b", None, "x")])
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("value", agg="count"), attr("*", agg="count")),
        )))
        assert result.rows == [(1, 2)]

    def test_group_on_empty_filter_result(self):
        db = build_db([("a", 1, "x")])
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("tag"), attr("*", agg="count")),
            groups=(Group("grouping", attr("tag")),),
            filter=Filter(Comparison(">", attr("value"), 100)),
        )))
        assert result.rows == []

    def test_numeric_binning_single_value_column(self):
        db = build_db([("a", 7, "x"), ("b", 7, "x"), ("c", 7, "y")])
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("value"), attr("*", agg="count")),
            groups=(Group("binning", attr("value"), bin_unit="numeric"),),
        )))
        assert sum(r[1] for r in result.rows) == 3
        assert len(result.rows) == 1

    def test_sum_of_non_numeric_raises(self):
        db = build_db([("a", 1, "x")])
        with pytest.raises(ExecutionError):
            Executor(db).execute(SQLQuery(QueryCore(
                select=(attr("name", agg="sum"),),
            )))

    def test_max_on_strings_uses_lexicographic_order(self):
        db = build_db([("alpha", 1, "x"), ("zeta", 2, "x")])
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("name", agg="max"),),
        )))
        assert result.rows == [("zeta",)]

    def test_unknown_table_raises(self):
        db = build_db([("a", 1, "x")])
        with pytest.raises(Exception):
            Executor(db).execute(SQLQuery(QueryCore(
                select=(Attribute("v", table="missing"),),
            )))

    def test_like_filter_skips_null_cells(self):
        db = build_db([("a", 1, None), ("b", 2, "xy")],
                      columns=(Column("name", "C"), Column("value", "Q"),
                               Column("tag", "C")))
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("name"),),
            filter=Filter(Like(attr("tag"), "%x%")),
        )))
        assert result.rows == [("b",)]
