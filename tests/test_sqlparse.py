"""SQL lexer/parser/printer tests, including print→parse round-trips."""

import pytest

from repro.grammar.ast_nodes import (
    Between,
    Comparison,
    InSubquery,
    Like,
    LogicalPredicate,
    SetQuery,
    SubqueryComparison,
    Superlative,
)
from repro.grammar.errors import ParseError
from repro.sqlparse import parse_sql, to_sql, tokenize_sql


class TestLexer:
    def test_keywords_uppercase_names_keep_case(self):
        tokens = tokenize_sql("SELECT Price from flight")
        assert [t.text for t in tokens] == ["SELECT", "Price", "FROM", "flight"]
        assert tokens[1].kind == "name"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize_sql("SELECT x FROM t WHERE n = 'O''Brien'")
        assert tokens[-1].text == "O'Brien"

    def test_negative_numbers(self):
        tokens = tokenize_sql("SELECT x FROM t WHERE v > -42.5")
        assert tokens[-1].text == "-42.5"
        assert tokens[-1].kind == "number"

    def test_neq_normalization(self):
        tokens = tokenize_sql("SELECT x FROM t WHERE v <> 1")
        assert any(t.text == "!=" for t in tokens)

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            tokenize_sql("SELECT x FROM t WHERE v > $5")


class TestParser:
    def test_unqualified_columns_resolved_by_schema(self, flight_db):
        query = parse_sql("SELECT origin, price FROM flight", flight_db)
        core = query.cores[0]
        assert [a.qualified_name for a in core.select] == ["flight.origin", "flight.price"]

    def test_unqualified_without_schema_fails_on_join(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT price FROM flight, airline")

    def test_count_star(self, flight_db):
        query = parse_sql("SELECT COUNT(*) FROM flight", flight_db)
        assert query.cores[0].select[0].column == "*"

    def test_group_by_and_having(self, flight_db):
        query = parse_sql(
            "SELECT origin, COUNT(*) FROM flight GROUP BY origin HAVING COUNT(*) > 1",
            flight_db,
        )
        core = query.cores[0]
        assert core.groups[0].attr.column == "origin"
        assert isinstance(core.filter.root, Comparison)
        assert core.filter.root.attr.agg == "count"

    def test_order_with_limit_becomes_superlative(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight ORDER BY price DESC LIMIT 3", flight_db
        )
        sup = query.cores[0].superlative
        assert isinstance(sup, Superlative)
        assert sup.kind == "most" and sup.k == 3

    def test_order_without_limit(self, flight_db):
        query = parse_sql("SELECT fno, price FROM flight ORDER BY price ASC", flight_db)
        assert query.cores[0].order.direction == "asc"

    def test_between_like_in(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight WHERE price BETWEEN 100 AND 300 "
            "AND destination LIKE '%A%' "
            "AND origin IN (SELECT origin FROM flight WHERE price > 600)",
            flight_db,
        )
        preds = list(query.cores[0].filter.predicates())
        assert any(isinstance(p, Between) for p in preds)
        assert any(isinstance(p, Like) for p in preds)
        assert any(isinstance(p, InSubquery) for p in preds)

    def test_not_in_and_not_like(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight WHERE destination NOT LIKE '%A%' "
            "AND origin NOT IN (SELECT origin FROM flight WHERE price > 600)",
            flight_db,
        )
        preds = list(query.cores[0].filter.predicates())
        assert any(isinstance(p, Like) and p.negated for p in preds)
        assert any(isinstance(p, InSubquery) and p.negated for p in preds)

    def test_scalar_subquery(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight WHERE price > (SELECT AVG(price) FROM flight)",
            flight_db,
        )
        assert isinstance(query.cores[0].filter.root, SubqueryComparison)

    def test_or_precedence(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight WHERE origin = 'APG' AND price > 100 OR origin = 'BOS'",
            flight_db,
        )
        root = query.cores[0].filter.root
        assert isinstance(root, LogicalPredicate) and root.op == "or"

    def test_parenthesized_predicates(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight WHERE origin = 'APG' AND (price > 600 OR price < 200)",
            flight_db,
        )
        root = query.cores[0].filter.root
        assert root.op == "and"
        assert isinstance(root.right, LogicalPredicate) and root.right.op == "or"

    def test_join_with_alias(self, flight_db):
        query = parse_sql(
            "SELECT a.name, f.price FROM airline AS a JOIN flight AS f ON a.code = f.fno",
            flight_db,
        )
        tables = query.cores[0].tables
        assert set(tables) == {"airline", "flight"}

    def test_set_operation(self, flight_db):
        query = parse_sql(
            "SELECT origin FROM flight WHERE price > 400 "
            "EXCEPT SELECT origin FROM flight WHERE price > 600",
            flight_db,
        )
        assert isinstance(query.body, SetQuery)
        assert query.body.op == "except"

    def test_trailing_garbage_rejected(self, flight_db):
        # Note "FROM flight banana" would parse as a table alias, as in
        # real SQL — the garbage must come after a complete query.
        with pytest.raises(ParseError):
            parse_sql("SELECT fno FROM flight WHERE price > 1 banana", flight_db)

    def test_ambiguous_column_rejected(self, flight_db):
        # 'code' exists only in airline, but add a clashing column name.
        from repro.storage.schema import Column, Table

        flight_db.add_table(Table("extra", (Column("name", "C"), Column("price", "Q"))))
        with pytest.raises(ParseError):
            parse_sql("SELECT price FROM flight, extra", flight_db)


class TestPrinter:
    def test_join_reconstruction(self, flight_db):
        query = parse_sql(
            "SELECT airline.name, flight.price FROM airline JOIN flight ON airline.code = flight.fno",
            flight_db,
        )
        sql = to_sql(query, flight_db)
        assert "JOIN" in sql and "ON airline.code = flight.fno" in sql

    def test_string_escaping(self, flight_db):
        query = parse_sql("SELECT fno FROM flight WHERE origin = 'O''Hare'", flight_db)
        assert "'O''Hare'" in to_sql(query, flight_db)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT flight.origin FROM flight",
            "SELECT flight.origin, COUNT(flight.*) FROM flight GROUP BY flight.origin",
            "SELECT flight.fno FROM flight WHERE flight.price > 100 AND flight.origin = 'APG'",
            "SELECT flight.fno FROM flight ORDER BY flight.price DESC LIMIT 2",
            "SELECT flight.origin FROM flight WHERE flight.price BETWEEN 100 AND 400",
            "SELECT flight.origin FROM flight INTERSECT SELECT flight.destination FROM flight",
        ],
    )
    def test_round_trip(self, flight_db, sql):
        query = parse_sql(sql, flight_db)
        assert parse_sql(to_sql(query, flight_db), flight_db) == query

    def test_corpus_round_trip(self, small_corpus):
        """Every generated pair prints and re-parses to the same AST."""
        for pair in small_corpus.pairs:
            db = small_corpus.databases[pair.db_name]
            printed = to_sql(pair.query, db)
            assert parse_sql(printed, db) == pair.query
