"""Unit tests for the AST node classes (Figure 5 grammar)."""

import pytest

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    LogicalPredicate,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    VisQuery,
    walk,
)


def attr(column="price", table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


class TestAttribute:
    def test_qualified_name(self):
        assert attr().qualified_name == "flight.price"

    def test_str_with_aggregate(self):
        assert str(attr(agg="avg")) == "avg(flight.price)"

    def test_bare_strips_aggregate(self):
        assert attr(agg="sum").bare() == attr()

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError):
            Attribute(column="price", table="flight", agg="median")

    def test_star_requires_count(self):
        with pytest.raises(ValueError):
            Attribute(column="*", table="flight", agg="sum")
        assert Attribute(column="*", table="flight", agg="count").is_aggregated

    def test_hashable_and_equal(self):
        assert attr() == attr()
        assert hash(attr()) == hash(attr())
        assert attr() != attr(agg="avg")


class TestPredicates:
    def test_comparison_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Comparison(op="~", attr=attr(), value=1)

    def test_logical_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            LogicalPredicate(op="xor", left=Comparison("=", attr(), 1), right=Comparison("=", attr(), 2))

    def test_filter_attributes_traverses_tree(self):
        pred = LogicalPredicate(
            op="and",
            left=Comparison(">", attr("price"), 10),
            right=Between(attr("departure_date"), "2020-01-01", "2020-12-31"),
        )
        names = [a.column for a in Filter(pred).attributes()]
        assert names == ["price", "departure_date"]

    def test_filter_predicates_counts_nodes(self):
        pred = LogicalPredicate(
            op="or",
            left=Comparison("=", attr("origin"), "APG"),
            right=Comparison("=", attr("origin"), "LAX"),
        )
        assert len(list(Filter(pred).predicates())) == 3


class TestGroup:
    def test_grouping_refuses_bin_unit(self):
        with pytest.raises(ValueError):
            Group(kind="grouping", attr=attr("origin"), bin_unit="year")

    def test_binning_requires_valid_unit(self):
        with pytest.raises(ValueError):
            Group(kind="binning", attr=attr("departure_date"), bin_unit="decade")

    def test_binning_default_bins(self):
        group = Group(kind="binning", attr=attr("price"), bin_unit="numeric")
        assert group.bin_count == 10


class TestQueryCore:
    def test_requires_nonempty_select(self):
        with pytest.raises(ValueError):
            QueryCore(select=())

    def test_at_most_two_groups(self):
        groups = tuple(
            Group(kind="grouping", attr=attr(c)) for c in ("origin", "destination", "fno")
        )
        with pytest.raises(ValueError):
            QueryCore(select=(attr(),), groups=groups)

    def test_tables_in_first_use_order(self):
        core = QueryCore(select=(attr(table="airline", column="name"), attr()))
        assert core.tables == ("airline", "flight")

    def test_all_attributes_covers_clauses(self):
        core = QueryCore(
            select=(attr("origin"),),
            filter=Filter(Comparison(">", attr("price"), 10)),
            groups=(Group(kind="grouping", attr=attr("origin")),),
            order=Order(direction="asc", attr=attr("origin")),
        )
        columns = [a.column for a in core.all_attributes()]
        assert columns == ["origin", "price", "origin", "origin"]

    def test_subqueries_are_discovered_recursively(self):
        inner = QueryCore(select=(attr("price", agg="avg"),))
        outer = QueryCore(
            select=(attr("origin"),),
            filter=Filter(InSubquery(attr=attr("origin"), query=QueryCore(
                select=(attr("origin"),),
                filter=Filter(Comparison(">", attr("price"), 5)),
            ))),
        )
        assert len(list(outer.subqueries())) == 1
        assert inner not in list(outer.subqueries())


class TestRootNodes:
    def test_vis_query_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            VisQuery(vis_type="donut", body=QueryCore(select=(attr(),)))

    def test_set_query_rejects_unknown_op(self):
        core = QueryCore(select=(attr(),))
        with pytest.raises(ValueError):
            SetQuery(op="minus", left=core, right=core)

    def test_cores_of_set_query(self):
        core = QueryCore(select=(attr(),))
        query = SQLQuery(body=SetQuery(op="union", left=core, right=core))
        assert len(query.cores) == 2

    def test_superlative_requires_positive_k(self):
        with pytest.raises(ValueError):
            Superlative(kind="most", k=0, attr=attr())


class TestWalk:
    def test_walk_covers_nested_subqueries(self):
        sub = QueryCore(select=(attr("price", agg="avg"),))
        core = QueryCore(
            select=(attr("origin"), attr("price")),
            filter=Filter(InSubquery(attr=attr("origin"), query=sub)),
        )
        nodes = list(walk(SQLQuery(body=core)))
        assert sub in nodes
        assert any(isinstance(n, InSubquery) for n in nodes)

    def test_walk_counts_attributes(self):
        core = QueryCore(
            select=(attr("origin"), attr("price", agg="sum")),
            groups=(Group(kind="grouping", attr=attr("origin")),),
        )
        nodes = list(walk(SQLQuery(body=core)))
        attrs = [n for n in nodes if isinstance(n, Attribute)]
        assert len(attrs) == 3
