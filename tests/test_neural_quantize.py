"""Tests for int8 / float16 quantized inference (repro.neural.quantize).

Quantization is a storage transform: weights shrink at rest, GEMMs run
in float32 after a memoized dequantize.  These tests pin the three
contracts the serve layer relies on: the arithmetic round-trips within
the format's tolerance, a quantized model still behaves like a model
(parameters enumerate, state persists, loss is finite), and the .npz
round-trip is bit-exact on the stored payloads.
"""

import numpy as np
import pytest

from repro.eval import QuantizationReport
from repro.neural.model import Seq2Vis
from repro.neural.persist import load_model, save_model
from repro.neural.quantize import (
    COMPUTE_DTYPE,
    INT8_LEVELS,
    PRECISIONS,
    QUANTIZED_PRECISIONS,
    QuantizedParameter,
    dequantize_array,
    model_precision,
    quantize_array,
    quantize_model,
    quantized_copy,
    storage_report,
)
from repro.neural.trainer import TrainConfig, train_model

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from test_neural_model import toy_dataset  # noqa: E402


@pytest.fixture(scope="module")
def trained():
    dataset = toy_dataset()
    model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                    "attention", 24, 32, seed=1)
    train_model(model, dataset, None,
                TrainConfig(epochs=60, batch_size=6, lr=5e-3, patience=60))
    return model, dataset


class TestQuantizeArray:
    def test_int8_round_trip_within_scale(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(scale=0.4, size=(37, 19)).astype(np.float32)
        payload, scale = quantize_array(weights, "int8")
        assert payload.dtype == np.int8
        assert np.abs(payload).max() <= INT8_LEVELS
        restored = dequantize_array(payload, scale)
        assert restored.dtype == COMPUTE_DTYPE
        # Max quantization error is half a step.
        assert np.abs(restored - weights).max() <= scale / 2 + 1e-7

    def test_int8_scale_spans_extremes(self):
        weights = np.array([-2.0, 0.5, 2.0], dtype=np.float32)
        payload, scale = quantize_array(weights, "int8")
        assert payload[0] == -INT8_LEVELS and payload[2] == INT8_LEVELS
        assert scale == pytest.approx(2.0 / INT8_LEVELS)

    def test_int8_all_zero_tensor(self):
        payload, scale = quantize_array(np.zeros(5, dtype=np.float32), "int8")
        assert scale == 1.0
        assert np.all(payload == 0)
        assert np.all(dequantize_array(payload, scale) == 0.0)

    def test_float16_round_trip(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(8, 8)).astype(np.float32)
        payload, scale = quantize_array(weights, "float16")
        assert payload.dtype == np.float16
        assert scale == 1.0
        restored = dequantize_array(payload, scale)
        assert np.abs(restored - weights).max() <= 1e-3

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), "int4")


class TestQuantizedModel:
    @pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
    def test_parameters_still_enumerate(self, trained, precision):
        model, _ = trained
        names = [p.name for p in model.parameters()]
        copy = quantized_copy(model, precision)
        assert model_precision(copy) == precision
        assert [p.name for p in copy.parameters()] == names
        assert all(
            isinstance(p, QuantizedParameter) for p in copy.parameters()
        )

    def test_original_untouched_by_copy(self, trained):
        model, _ = trained
        before = model.state_dict()
        quantized_copy(model, "int8")
        assert model_precision(model) == "float32"
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_dequantized_data_is_float32_and_memoized(self, trained):
        model, _ = trained
        copy = quantized_copy(model, "int8")
        param = next(iter(copy.parameters()))
        first = param.data
        assert first.dtype == COMPUTE_DTYPE
        assert param.data is first  # memoized, not re-expanded
        param.drop_cache()
        assert param.data is not first

    def test_weights_are_read_only(self, trained):
        model, _ = trained
        copy = quantized_copy(model, "float16")
        param = next(iter(copy.parameters()))
        with pytest.raises(TypeError):
            param.data = np.zeros_like(param.data)

    @pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
    def test_decode_matches_float32(self, trained, precision):
        """On a converged toy model quantization must not flip decodes."""
        model, dataset = trained
        vocab = dataset.out_vocab
        batch = dataset.batch_of(dataset.examples)
        base = model.greedy_decode_batch(batch, vocab.bos_id, vocab.eos_id)
        quant = quantized_copy(model, precision).greedy_decode_batch(
            batch, vocab.bos_id, vocab.eos_id
        )
        assert quant == base

    def test_loss_still_finite(self, trained):
        model, dataset = trained
        copy = quantized_copy(model, "int8")
        batch = dataset.batch_of(dataset.examples)
        assert np.isfinite(copy.loss(batch).item())

    def test_requantizing_same_precision_is_noop(self, trained):
        model, _ = trained
        copy = quantized_copy(model, "int8")
        assert quantize_model(copy, "int8") is copy

    def test_cross_precision_requantize_rejected(self, trained):
        model, _ = trained
        copy = quantized_copy(model, "int8")
        with pytest.raises(ValueError):
            quantize_model(copy, "float16")

    def test_storage_report_compression(self, trained):
        model, _ = trained
        int8 = storage_report(quantized_copy(model, "int8"))
        f16 = storage_report(quantized_copy(model, "float16"))
        f32 = storage_report(model)
        assert int8["compression"] == pytest.approx(4.0)
        assert f16["compression"] == pytest.approx(2.0)
        assert f32["compression"] == pytest.approx(1.0)
        assert int8["stored_bytes"] * 4 == int8["float32_bytes"]
        assert len(int8["tensors"]) == len(list(model.parameters()))


class TestQuantizedPersistence:
    @pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
    def test_round_trip_is_payload_exact(self, trained, tmp_path, precision):
        model, dataset = trained
        copy = quantized_copy(model, precision)
        path = tmp_path / f"model_{precision}.npz"
        save_model(copy, dataset.in_vocab, dataset.out_vocab, str(path))
        loaded, in_vocab, out_vocab = load_model(str(path))
        assert model_precision(loaded) == precision
        assert loaded.checkpoint_meta["precision"] == precision
        for saved, restored in zip(copy.parameters(), loaded.parameters()):
            np.testing.assert_array_equal(saved.payload, restored.payload)
            assert saved.scale == restored.scale

    def test_quantized_checkpoint_cannot_reload_wider(
        self, trained, tmp_path
    ):
        model, dataset = trained
        path = tmp_path / "model_int8.npz"
        save_model(
            quantized_copy(model, "int8"),
            dataset.in_vocab, dataset.out_vocab, str(path),
        )
        with pytest.raises(ValueError):
            load_model(str(path), precision="float32")

    def test_float_checkpoint_quantizes_at_load(self, trained, tmp_path):
        model, dataset = trained
        path = tmp_path / "model_f32.npz"
        save_model(model, dataset.in_vocab, dataset.out_vocab, str(path))
        loaded, _, _ = load_model(str(path), precision="int8")
        assert model_precision(loaded) == "int8"
        assert loaded.checkpoint_meta["precision"] == "int8"
        reference = quantized_copy(model, "int8")
        for expect, got in zip(reference.parameters(), loaded.parameters()):
            np.testing.assert_array_equal(expect.payload, got.payload)


class TestQuantizationReport:
    def test_guard_passes_within_epsilon(self):
        report = QuantizationReport(
            float32_tree_accuracy=0.90,
            rows={"int8": {"tree_accuracy": 0.89, "result_accuracy": 0.8,
                           "compression": 4.0, "stored_bytes": 100}},
        )
        report.assert_within(0.02)
        assert report.drop("int8") == pytest.approx(0.01)

    def test_guard_fires_past_epsilon(self):
        report = QuantizationReport(
            float32_tree_accuracy=0.90,
            rows={"float16": {"tree_accuracy": 0.70, "result_accuracy": 0.6,
                              "compression": 2.0, "stored_bytes": 200}},
        )
        with pytest.raises(AssertionError, match="float16"):
            report.assert_within(0.05)

    def test_json_shape(self):
        report = QuantizationReport(
            float32_tree_accuracy=0.5,
            rows={"int8": {"tree_accuracy": 0.5, "result_accuracy": 0.5,
                           "compression": 4.0, "stored_bytes": 10}},
        )
        doc = report.to_json()
        assert doc["precisions"]["int8"]["tree_accuracy_drop"] == 0.0
