"""Executor tests: every clause of the grammar against the fixture DB."""

import pytest

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    SubqueryComparison,
    VisQuery,
)
from repro.storage.executor import ExecutionError, Executor


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


def run(db, body):
    return Executor(db).execute(SQLQuery(body=body))


class TestProjection:
    def test_plain_projection(self, flight_db):
        result = run(flight_db, QueryCore(select=(attr("origin"), attr("price"))))
        assert result.row_count == 6
        assert result.columns == ["flight.origin", "flight.price"]

    def test_duplicates_are_kept(self, flight_db):
        result = run(flight_db, QueryCore(select=(attr("origin"),)))
        origins = result.column_values(0)
        assert origins.count("APG") == 3


class TestFilters:
    def test_numeric_comparison(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(Comparison(">", attr("price"), 400)),
        ))
        assert sorted(r[0] for r in result.rows) == ["F3", "F5", "F6"]

    def test_between(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(Between(attr("price"), 200, 400)),
        ))
        assert sorted(r[0] for r in result.rows) == ["F1", "F4"]

    def test_like_is_case_insensitive(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(Like(attr("destination"), "a%")),
        ))
        assert sorted(r[0] for r in result.rows) == ["F1", "F3"]

    def test_not_like(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(Like(attr("destination"), "%L%", negated=True)),
        ))
        assert sorted(r[0] for r in result.rows) == ["F2", "F4", "F5"]

    def test_and_or_combination(self, flight_db):
        pred = LogicalPredicate(
            op="or",
            left=Comparison("=", attr("origin"), "BOS"),
            right=LogicalPredicate(
                op="and",
                left=Comparison("=", attr("origin"), "APG"),
                right=Comparison("<", attr("price"), 200),
            ),
        )
        result = run(flight_db, QueryCore(select=(attr("fno"),), filter=Filter(pred)))
        assert sorted(r[0] for r in result.rows) == ["F2", "F6"]

    def test_scalar_subquery_comparison(self, flight_db):
        sub = QueryCore(select=(attr("price", agg="avg"),))
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(SubqueryComparison(">", attr("price"), sub)),
        ))
        # avg price = 391.67 -> F3, F5, F6
        assert sorted(r[0] for r in result.rows) == ["F3", "F5", "F6"]

    def test_in_subquery(self, flight_db):
        sub = QueryCore(
            select=(attr("origin"),),
            filter=Filter(Comparison(">", attr("price"), 600)),
        )
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(InSubquery(attr("origin"), sub)),
        ))
        assert sorted(r[0] for r in result.rows) == ["F3", "F5"]

    def test_not_in_subquery(self, flight_db):
        sub = QueryCore(
            select=(attr("origin"),),
            filter=Filter(Comparison(">", attr("price"), 600)),
        )
        result = run(flight_db, QueryCore(
            select=(attr("fno"),),
            filter=Filter(InSubquery(attr("origin"), sub, negated=True)),
        ))
        assert sorted(r[0] for r in result.rows) == ["F1", "F2", "F4", "F6"]


class TestAggregation:
    def test_global_count_star(self, flight_db):
        result = run(flight_db, QueryCore(select=(attr("*", agg="count"),)))
        assert result.rows == [(6,)]

    def test_count_star_on_empty_filter_returns_zero(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("*", agg="count"),),
            filter=Filter(Comparison(">", attr("price"), 10_000)),
        ))
        assert result.rows == [(0,)]

    def test_group_count(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
        ))
        assert dict(result.rows) == {"APG": 3, "LAX": 2, "BOS": 1}

    def test_group_avg(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("origin"), attr("price", agg="avg")),
            groups=(Group("grouping", attr("origin")),),
        ))
        values = dict(result.rows)
        assert values["LAX"] == pytest.approx(600.0)

    def test_min_max_sum(self, flight_db):
        result = run(flight_db, QueryCore(select=(
            attr("price", agg="min"), attr("price", agg="max"), attr("price", agg="sum"),
        )))
        assert result.rows == [(150.0, 700.0, 2350.0)]

    def test_having_filters_groups(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
            filter=Filter(Comparison(">=", attr("*", agg="count"), 2)),
        ))
        assert dict(result.rows) == {"APG": 3, "LAX": 2}

    def test_having_combined_with_where(self, flight_db):
        pred = LogicalPredicate(
            op="and",
            left=Comparison(">", attr("price"), 200),
            right=Comparison(">=", attr("*", agg="count"), 2),
        )
        result = run(flight_db, QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
            filter=Filter(pred),
        ))
        assert dict(result.rows) == {"APG": 2, "LAX": 2}

    def test_having_without_grouping_is_an_error(self, flight_db):
        with pytest.raises(ExecutionError):
            run(flight_db, QueryCore(
                select=(attr("origin"),),
                filter=Filter(Comparison(">", attr("price", agg="avg"), 100)),
            ))


class TestBinning:
    def test_temporal_year_binning(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="year"),),
        ))
        assert dict(result.rows) == {"2020": 3, "2021": 3}

    def test_temporal_month_binning(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="month"),),
        ))
        assert result.rows and dict(result.rows)["2020-02"] == 2

    def test_numeric_binning_covers_all_rows(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("price"), attr("*", agg="count")),
            groups=(Group("binning", attr("price"), bin_unit="numeric", bin_count=5),),
        ))
        assert sum(count for _, count in result.rows) == 6

    def test_binned_order_is_chronological(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="year"),),
            order=Order("asc", attr("departure_date")),
        ))
        assert [row[0] for row in result.rows] == ["2020", "2021"]


class TestOrderAndSuperlative:
    def test_order_desc(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"), attr("price")),
            order=Order("desc", attr("price")),
        ))
        assert [r[0] for r in result.rows][:2] == ["F5", "F3"]

    def test_superlative_most(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"), attr("price")),
            superlative=Superlative("most", 2, attr("price")),
        ))
        assert [r[0] for r in result.rows] == ["F5", "F3"]

    def test_superlative_least(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("fno"), attr("price")),
            superlative=Superlative("least", 1, attr("price")),
        ))
        assert result.rows == [("F2", 150.0)]

    def test_order_on_aggregate(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
            order=Order("desc", attr("*", agg="count")),
        ))
        assert [r[0] for r in result.rows] == ["APG", "LAX", "BOS"]

    def test_order_by_unselected_attribute_fails(self, flight_db):
        with pytest.raises(ExecutionError):
            run(flight_db, QueryCore(
                select=(attr("fno"),),
                order=Order("asc", attr("price")),
            ))


class TestJoins:
    def test_fk_join(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("name", table="airline"), attr("price")),
        ))
        assert sorted(result.rows) == [("Alpha", 300.0), ("Beta", 500.0), ("Gamma", 700.0)]

    def test_join_with_filter(self, flight_db):
        result = run(flight_db, QueryCore(
            select=(attr("name", table="airline"),),
            filter=Filter(Comparison(">", attr("price"), 400)),
        ))
        assert sorted(r[0] for r in result.rows) == ["Beta", "Gamma"]

    def test_unjoinable_tables_raise(self, flight_db):
        from repro.storage.schema import Column, Table

        flight_db.add_table(Table("island", (Column("x", "C"),)))
        with pytest.raises(ExecutionError):
            run(flight_db, QueryCore(
                select=(attr("x", table="island"), attr("price")),
            ))


class TestSetOperations:
    def _origins(self, pred):
        return QueryCore(select=(attr("origin"),), filter=Filter(pred))

    def test_intersect(self, flight_db):
        body = SetQuery(
            op="intersect",
            left=self._origins(Comparison(">", attr("price"), 400)),
            right=self._origins(Comparison("<", attr("price"), 600)),
        )
        result = run(flight_db, body)
        assert sorted(r[0] for r in result.rows) == ["BOS", "LAX"]

    def test_union_deduplicates(self, flight_db):
        body = SetQuery(
            op="union",
            left=self._origins(Comparison("=", attr("origin"), "APG")),
            right=self._origins(Comparison("=", attr("origin"), "APG")),
        )
        result = run(flight_db, body)
        assert result.rows == [("APG",)]

    def test_except(self, flight_db):
        body = SetQuery(
            op="except",
            left=self._origins(Comparison(">", attr("price"), 0)),
            right=self._origins(Comparison(">", attr("price"), 400)),
        )
        result = run(flight_db, body)
        assert sorted(r[0] for r in result.rows) == ["APG"]


class TestVisExecution:
    def test_vis_query_executes_like_its_body(self, flight_db):
        core = QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
        )
        vis_result = Executor(flight_db).execute(VisQuery("pie", core))
        sql_result = Executor(flight_db).execute(SQLQuery(core))
        assert vis_result.rows == sql_result.rows

    def test_canonical_is_order_insensitive(self, flight_db):
        core = QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
        )
        plain = Executor(flight_db).execute(SQLQuery(core))
        ordered = Executor(flight_db).execute(SQLQuery(QueryCore(
            select=core.select, groups=core.groups,
            order=Order("desc", attr("*", agg="count")),
        )))
        assert plain.canonical() == ordered.canonical()
