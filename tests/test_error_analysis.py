"""Tests for the prediction error-analysis tool."""

from repro.eval.error_analysis import ErrorReport, analyse, categorize_error
from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Order,
    QueryCore,
    VisQuery,
)


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


def grouped_bar(vis_type="bar", agg="sum", x="origin", table="flight",
                order=None, filter_=None, groups=None):
    x_attr = Attribute(x, table)
    if groups is None:
        groups = (Group("grouping", x_attr),)
    return VisQuery(vis_type, QueryCore(
        select=(x_attr, Attribute("price", table, agg=agg)),
        groups=groups,
        order=order,
        filter=filter_,
    ))


class TestCategorize:
    def test_correct_prediction_is_none(self):
        assert categorize_error(grouped_bar(), grouped_bar()) is None

    def test_values_ignored(self):
        left = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 1)))
        right = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 99)))
        assert categorize_error(left, right) is None

    def test_unparseable(self):
        assert categorize_error(None, grouped_bar()) == "unparseable"

    def test_wrong_vis_type(self):
        assert categorize_error(grouped_bar("pie"), grouped_bar()) == "wrong_vis_type"

    def test_wrong_tables(self):
        joined = VisQuery("bar", QueryCore(
            select=(attr("name", table="airline"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("name", table="airline")),),
        ))
        assert categorize_error(joined, grouped_bar()) == "wrong_tables"

    def test_wrong_axis_columns(self):
        other = grouped_bar(x="destination")
        assert categorize_error(other, grouped_bar()) == "wrong_axis_columns"

    def test_wrong_aggregate(self):
        assert categorize_error(grouped_bar(agg="avg"), grouped_bar()) == "wrong_aggregate"

    def test_wrong_group_or_bin(self):
        binned = VisQuery("bar", QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="year"),),
        ))
        monthly = VisQuery("bar", QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="month"),),
        ))
        assert categorize_error(binned, monthly) == "wrong_group_or_bin"

    def test_wrong_filter(self):
        filtered = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 1)))
        assert categorize_error(filtered, grouped_bar()) == "wrong_filter"

    def test_wrong_order(self):
        ordered = grouped_bar(order=Order("desc", attr("price", agg="sum")))
        assert categorize_error(ordered, grouped_bar()) == "wrong_order_or_limit"

    def test_specificity_order(self):
        """A prediction wrong in several ways gets the most specific
        (earliest) category."""
        wrong_everything = VisQuery("pie", QueryCore(
            select=(attr("destination"), attr("price", agg="avg")),
            groups=(Group("grouping", attr("destination")),),
        ))
        assert categorize_error(wrong_everything, grouped_bar()) == "wrong_vis_type"


class TestReport:
    def test_aggregation(self):
        predictions = [
            (grouped_bar(), grouped_bar(), "bar", "medium"),
            (grouped_bar("pie"), grouped_bar(), "bar", "medium"),
            (None, grouped_bar(), "bar", "hard"),
            (grouped_bar(agg="avg"), grouped_bar(), "bar", "hard"),
        ]
        report = analyse(predictions)
        assert report.n_errors == 3
        assert report.category_counts()["wrong_vis_type"] == 1
        assert report.dominant_category() in (
            "wrong_vis_type", "unparseable", "wrong_aggregate",
        )
        by_hardness = report.by_hardness()
        assert by_hardness["hard"]["unparseable"] == 1

    def test_empty_report(self):
        report = ErrorReport()
        assert report.n_errors == 0
        assert report.dominant_category() is None
