"""Unit tests for the shard store, build manifest, and cache journal.

End-to-end resume/corruption behaviour lives in
``tests/test_build_parallel.py``; this file pins the layer contracts:
atomic writes, canonical hashing, record round-trips, manifest
compatibility, and the journal's corruption tolerance.
"""

from __future__ import annotations

import json

import pytest

from repro.core.hardness import Hardness
from repro.core.synthesizer import SynthesizedPair
from repro.spider.corpus import CorpusConfig, generate_corpus_unit
from repro.storage.executor import ExecutionCache, ResultTable
from repro.storage.journal import (
    PersistentExecutionCache,
    decode_entry,
    encode_entry,
    load_journal,
)
from repro.storage.shards import (
    BuildManifest,
    ManifestEntry,
    ShardError,
    ShardStore,
    canonical_json,
    content_hash,
    database_payload,
    database_from_payload,
    file_sha256,
    pair_from_record,
    pair_record,
    write_text_atomic,
)

CFG = CorpusConfig(num_databases=2, pairs_per_database=3, row_scale=0.3, seed=3)


@pytest.fixture(scope="module")
def unit():
    return generate_corpus_unit(CFG, 0)


def _entry(name="db", key="k", **overrides):
    fields = dict(
        name=name, key=key, db_index=0, shard_sha256="s",
        corpus_sha256="c", pairs=1, input_pairs=1,
    )
    fields.update(overrides)
    return ManifestEntry(**fields)


class TestHashing:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_content_hash_changes_with_content(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_write_text_atomic_returns_file_hash(self, tmp_path):
        path = tmp_path / "deep" / "file.txt"
        written = write_text_atomic(path, "payload")
        assert path.read_text() == "payload"
        assert written == file_sha256(path)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_database_payload_round_trips(self, unit):
        database, _ = unit
        rebuilt = database_from_payload(database_payload(database))
        assert database_payload(rebuilt) == database_payload(database)
        assert content_hash(database_payload(rebuilt)) == \
            content_hash(database_payload(database))


class TestPairRecords:
    def test_round_trip(self, unit):
        database, pairs = unit
        from repro.core.nvbench import NVBenchConfig, build_nvbench
        from repro.spider.corpus import SpiderCorpus

        corpus = SpiderCorpus(databases={database.name: database}, pairs=pairs)
        bench = build_nvbench(
            corpus, NVBenchConfig(corpus=CFG, filter_training_pairs=4, seed=3)
        )
        assert bench.pairs
        for index, pair in enumerate(bench.pairs):
            record = pair_record(pair, index)
            assert record["index"] == index
            assert json.loads(canonical_json(record)) == record
            assert pair_from_record(record) == pair

    def test_bad_tokens_raise_shard_error(self, unit):
        from repro.core.tree_edits import TreeEditConfig, generate_candidates
        from repro.grammar.serialize import to_tokens

        database, pairs = unit
        candidate = next(
            iter(generate_candidates(pairs[0].query, database, TreeEditConfig()))
        )
        record = pair_record(
            SynthesizedPair(
                nl="q", vis=candidate.vis, db_name=database.name,
                hardness=Hardness.EASY, source_nl=pairs[0].nl,
                source_sql=pairs[0].sql, manually_edited=False,
                back_translated=False,
            ),
            0,
        )
        # stripping the "visualize <type>" prefix parses as a plain SQL
        # query — not a vis — which the loader must reject
        record["vis_tokens"] = to_tokens(candidate.vis)[2:]
        with pytest.raises(ShardError):
            pair_from_record(record)


class TestShardStore:
    def test_shard_write_read_round_trip(self, tmp_path):
        store = ShardStore(str(tmp_path))
        records = [{"index": 0, "a": 1}, {"index": 1, "a": 2}]
        sha = store.write_shard("db_1", records)
        assert file_sha256(store.shard_path("db_1")) == sha
        assert store.read_shard_records("db_1") == records

    def test_corrupt_shard_raises(self, tmp_path):
        store = ShardStore(str(tmp_path))
        store.write_shard("db_1", [{"a": 1}])
        store.shard_path("db_1").write_text('{"a": 1}\ngarbage{{{\n')
        with pytest.raises(ShardError):
            store.read_shard_records("db_1")
        with pytest.raises(ShardError):
            store.read_shard_records("missing_db")

    def test_corpus_unit_round_trip(self, tmp_path, unit):
        database, pairs = unit
        store = ShardStore(str(tmp_path))
        store.write_corpus_unit(
            database.name, database, [(p.nl, p.sql) for p in pairs]
        )
        loaded_db, loaded_pairs = store.load_corpus_unit(database.name)
        assert database_payload(loaded_db) == database_payload(database)
        assert [(p.nl, p.sql) for p in loaded_pairs] == \
            [(p.nl, p.sql) for p in pairs]
        # the SQL AST is re-parsed against the loaded schema
        assert all(p.query is not None for p in loaded_pairs)

    def test_entry_is_clean_verifies_key_and_both_files(self, tmp_path):
        store = ShardStore(str(tmp_path))
        shard_sha = store.write_shard("db_1", [{"a": 1}])
        corpus_sha = write_text_atomic(store.corpus_path("db_1"), "{}")
        entry = _entry(
            name="db_1", key="k", shard_sha256=shard_sha,
            corpus_sha256=corpus_sha,
        )
        assert store.entry_is_clean(entry, "k")
        assert not store.entry_is_clean(entry, "other-key")
        store.shard_path("db_1").write_text("tampered\n")
        assert not store.entry_is_clean(entry, "k")


class TestManifest:
    def test_json_round_trip_preserves_order(self, tmp_path):
        manifest = BuildManifest(
            mode="streamed", config_fingerprint="cf", filter_fingerprint="ff"
        )
        manifest.entries["b"] = _entry(name="b", db_index=0)
        manifest.entries["a"] = _entry(name="a", db_index=1)
        store = ShardStore(str(tmp_path))
        store.save_manifest(manifest)
        loaded = store.load_manifest()
        assert list(loaded.entries) == ["b", "a"]
        assert loaded.to_json() == manifest.to_json()
        assert loaded.compatible_with(manifest)

    def test_incompatible_fingerprints(self):
        base = BuildManifest(config_fingerprint="cf", filter_fingerprint="ff")
        assert not base.compatible_with(
            BuildManifest(config_fingerprint="other", filter_fingerprint="ff")
        )
        assert not base.compatible_with(
            BuildManifest(config_fingerprint="cf", filter_fingerprint="other")
        )
        assert not base.compatible_with(
            BuildManifest(mode="streamed", config_fingerprint="cf",
                          filter_fingerprint="ff")
        )

    def test_corrupt_manifest_loads_as_none(self, tmp_path):
        store = ShardStore(str(tmp_path))
        assert store.load_manifest() is None
        store.manifest_path.parent.mkdir(parents=True, exist_ok=True)
        store.manifest_path.write_text("{ not json")
        assert store.load_manifest() is None
        store.manifest_path.write_text('{"version": 1}')
        assert store.load_manifest() is None


class TestJournal:
    KEY = ("db_1", ("select", "name", "from", "t"))

    def test_result_entry_round_trips(self):
        table = ResultTable(columns=["a", "b"], rows=[(1, "x"), (2, "y")])
        line = encode_entry(self.KEY, ExecutionCache._OK, table)
        key, (kind, value) = decode_entry(line)
        assert key == self.KEY
        assert kind == ExecutionCache._OK
        assert value.columns == ["a", "b"]
        assert value.rows == [(1, "x"), (2, "y")]

    def test_error_entry_round_trips(self):
        line = encode_entry(self.KEY, ExecutionCache._ERR, "no such column")
        _, (kind, value) = decode_entry(line)
        assert kind == ExecutionCache._ERR
        assert value == "no such column"

    def test_tampered_line_decodes_to_none(self):
        line = encode_entry(self.KEY, ExecutionCache._ERR, "boom")
        assert decode_entry(line.replace("boom", "BOOM")) is None
        assert decode_entry(line[: len(line) // 2]) is None
        assert decode_entry("not json\n") is None

    def test_load_journal_skips_and_counts_corruption(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ok1 = encode_entry(("db", ("a",)), ExecutionCache._ERR, "x")
        ok2 = encode_entry(("db", ("b",)), ExecutionCache._ERR, "y")
        path.write_text(ok1 + "garbage\n" + ok2 + ok2[:10])
        entries, corrupt = load_journal(path)
        assert len(entries) == 2
        assert corrupt == 2

    def test_later_lines_win(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = encode_entry(("db", ("a",)), ExecutionCache._ERR, "old")
        second = encode_entry(("db", ("a",)), ExecutionCache._ERR, "new")
        path.write_text(first + second)
        entries, _ = load_journal(path)
        assert entries[("db", ("a",))] == (ExecutionCache._ERR, "new")

    def test_persistent_cache_flush_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        cache = PersistentExecutionCache(str(path))
        assert cache.preloaded == 0
        table = ResultTable(columns=["a"], rows=[(1,)])
        cache.store_result(("db", ("q",)), table)
        cache.store_error(("db", ("bad",)), "boom")
        assert cache.flush() == 2
        assert cache.flush() == 0  # nothing pending twice

        reloaded = PersistentExecutionCache(str(path))
        assert reloaded.preloaded == 2
        kind, value = reloaded.fetch(("db", ("q",)))
        assert kind == ExecutionCache._OK
        assert value.columns == ["a"] and value.rows == [(1,)]
        assert reloaded.fetch(("db", ("bad",))) == \
            (ExecutionCache._ERR, "boom")

    def test_absorb_entries_marks_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        cache = PersistentExecutionCache(str(path))
        donor = ExecutionCache()
        donor.store_error(("db", ("q",)), "boom")
        added = cache.absorb_entries(list(donor._entries.items()))
        assert added == 1
        assert cache.absorb_entries(list(donor._entries.items())) == 0
        assert cache.flush() == 1
        assert PersistentExecutionCache(str(path)).preloaded == 1

    def test_does_not_pickle(self, tmp_path):
        import pickle

        cache = PersistentExecutionCache(str(tmp_path / "j.jsonl"))
        with pytest.raises(TypeError):
            pickle.dumps(cache)
