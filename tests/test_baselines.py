"""Tests for the DeepEye / NL4DV rule-based baselines."""

from repro.baselines import DeepEyeBaseline, NL4DVBaseline
from repro.baselines.common import (
    detect_aggregate,
    detect_bin_unit,
    detect_chart_type,
    detect_sort,
    detect_topk,
    match_columns,
    pick_primary_table,
)
from repro.eval.metrics import tree_match
from repro.eval.splits import split_pairs
from repro.grammar.validate import validate_query


class TestNLAnalysis:
    def test_match_columns_in_mention_order(self, flight_db):
        matches = match_columns("show price then origin of flights", flight_db)
        names = [c.name for c in matches["flight"]]
        assert names == ["price", "origin"]

    def test_underscored_columns_match_phrases(self, flight_db):
        matches = match_columns("by departure date please", flight_db)
        assert any(c.name == "departure_date" for c in matches["flight"])

    def test_pick_primary_table_prefers_mentions(self, flight_db):
        matches = match_columns("list the airlines by name", flight_db)
        assert pick_primary_table("list the airlines by name", flight_db, matches) == "airline"

    def test_detect_aggregate(self):
        assert detect_aggregate("the average price") == "avg"
        assert detect_aggregate("how many flights") == "count"
        assert detect_aggregate("show the flights") is None

    def test_detect_chart_type(self):
        assert detect_chart_type("draw a pie chart") == "pie"
        assert detect_chart_type("show the proportion of sales") == "pie"
        assert detect_chart_type("a stacked bar please") == "stacked bar"
        assert detect_chart_type("just the data") is None

    def test_detect_sort_and_topk(self):
        assert detect_sort("in descending order") == "desc"
        assert detect_sort("from low to high") == "asc"
        assert detect_topk("give the top 5 by price") == 5
        assert detect_topk("all of them") is None

    def test_detect_bin_unit(self):
        assert detect_bin_unit("bin the date by month") == "month"
        assert detect_bin_unit("for each day of the week") == "weekday"


class TestDeepEyeBaseline:
    def test_returns_valid_ranked_charts(self, flight_db):
        baseline = DeepEyeBaseline()
        charts = baseline.predict("price by origin of flights", flight_db, k=5)
        assert charts
        for vis in charts:
            validate_query(vis)

    def test_k_monotone(self, flight_db):
        baseline = DeepEyeBaseline()
        top1 = baseline.predict("origin and price", flight_db, k=1)
        top3 = baseline.predict("origin and price", flight_db, k=3)
        assert len(top1) <= 1 and len(top3) <= 3
        if top1 and top3:
            assert top1[0] == top3[0]

    def test_never_produces_filters(self, flight_db):
        baseline = DeepEyeBaseline()
        charts = baseline.predict(
            "origin of flights with price above 300", flight_db, k=6
        )
        for vis in charts:
            assert vis.primary_core.filter is None

    def test_single_table_only(self, small_corpus):
        baseline = DeepEyeBaseline()
        for pair in small_corpus.pairs[:30]:
            db = small_corpus.databases[pair.db_name]
            for vis in baseline.predict(pair.nl, db, k=4):
                assert len(vis.primary_core.tables) == 1

    def test_empty_nl_falls_back(self, flight_db):
        baseline = DeepEyeBaseline()
        charts = baseline.predict("hello world", flight_db, k=3)
        for vis in charts:
            validate_query(vis)


class TestNL4DVBaseline:
    def test_explicit_chart_type_respected(self, flight_db):
        baseline = NL4DVBaseline()
        vis = baseline.predict(
            "Draw a pie chart of how many flights per origin", flight_db
        )
        assert vis is not None and vis.vis_type == "pie"

    def test_aggregate_keyword_used(self, flight_db):
        baseline = NL4DVBaseline()
        vis = baseline.predict("average price for each origin", flight_db)
        assert vis is not None
        measures = [a for a in vis.primary_core.select if a.is_aggregated]
        assert measures and measures[0].agg == "avg"

    def test_detects_value_filter(self, flight_db):
        baseline = NL4DVBaseline()
        vis = baseline.predict(
            "average price per origin where price is greater than 200", flight_db
        )
        assert vis is not None
        assert vis.primary_core.filter is not None

    def test_detects_topk(self, flight_db):
        baseline = NL4DVBaseline()
        vis = baseline.predict(
            "top 3 origins by total price", flight_db
        )
        assert vis is not None
        assert vis.primary_core.superlative is not None
        assert vis.primary_core.superlative.k == 3

    def test_no_attributes_returns_none(self, flight_db):
        baseline = NL4DVBaseline()
        assert baseline.predict("completely unrelated text", flight_db) is None

    def test_outputs_are_valid(self, small_corpus):
        baseline = NL4DVBaseline()
        for pair in small_corpus.pairs[:40]:
            db = small_corpus.databases[pair.db_name]
            vis = baseline.predict(pair.nl, db)
            if vis is not None:
                validate_query(vis)


class TestComparativeShape:
    def test_seq2vis_ordering_preconditions(self, small_nvbench):
        """Baselines must fail on every hard/extra-hard pair (they cannot
        express joins or nesting) — the Table 5 shape depends on it."""
        de = DeepEyeBaseline()
        nv = NL4DVBaseline()
        _, _, test = split_pairs(small_nvbench.pairs, seed=0)
        hard = [p for p in test if p.hardness.value in ("hard", "extra hard")]
        hard = [
            p for p in hard
            if len(p.vis.primary_core.tables) > 1 or list(p.vis.primary_core.subqueries())
        ]
        for pair in hard[:20]:
            db = small_nvbench.database_of(pair)
            assert not tree_match(nv.predict(pair.nl, db), pair.vis)
            assert not any(
                tree_match(v, pair.vis) for v in de.predict(pair.nl, db, k=6)
            )
