"""Tests for the DeepEye-style good/bad chart filter (Section 2.4)."""

import numpy as np
import pytest

from repro.core.filter_model import (
    ChartFeatures,
    DeepEyeFilter,
    LogisticRegression,
    extract_features,
    rule_verdict,
    teacher_label,
    train_filter_from_candidates,
)
from repro.core.tree_edits import generate_candidates
from repro.grammar.ast_nodes import Attribute, Comparison, Filter, Group, QueryCore, VisQuery


def features(**overrides) -> ChartFeatures:
    base = dict(
        vis_type="bar",
        n_rows=10,
        n_distinct_x=10,
        unique_ratio_x=1.0,
        y_min=0.0,
        y_max=100.0,
        y_spread=100.0,
        x_is_temporal=False,
        x_is_numeric=False,
        correlation=0.0,
        n_series=1,
    )
    base.update(overrides)
    return ChartFeatures(**base)


class TestRuleVerdict:
    def test_single_value_is_bad(self):
        assert rule_verdict(features(n_rows=1, n_distinct_x=1)) is False

    def test_pie_with_many_slices_is_bad(self):
        assert rule_verdict(features(vis_type="pie", n_rows=40, n_distinct_x=40)) is False

    def test_pie_with_negative_values_is_bad(self):
        assert rule_verdict(features(vis_type="pie", n_rows=5, y_min=-3.0)) is False

    def test_bar_with_hundreds_of_categories_is_bad(self):
        assert rule_verdict(features(n_rows=300, n_distinct_x=300)) is False

    def test_flat_line_is_bad(self):
        assert rule_verdict(features(vis_type="line", n_rows=5, n_distinct_x=1)) is False

    def test_tiny_scatter_is_bad(self):
        assert rule_verdict(features(vis_type="scatter", n_rows=2)) is False

    def test_reasonable_chart_defers_to_classifier(self):
        assert rule_verdict(features()) is None

    def test_too_many_series_is_bad(self):
        assert rule_verdict(features(vis_type="stacked bar", n_series=30)) is False


class TestTeacherLabel:
    def test_good_bar(self):
        assert teacher_label(features(n_distinct_x=8, n_rows=8)) is True

    def test_bar_with_duplicate_categories_is_bad(self):
        assert teacher_label(features(unique_ratio_x=0.5)) is False

    def test_good_pie(self):
        assert teacher_label(features(vis_type="pie", n_rows=4, n_distinct_x=4)) is True

    def test_wide_line_is_bad(self):
        assert (
            teacher_label(features(vis_type="line", n_rows=400, n_distinct_x=400))
            is False
        )


class TestFeatureExtraction:
    def test_features_from_execution(self, flight_db):
        vis = VisQuery("pie", QueryCore(
            select=(Attribute("origin", "flight"), Attribute("*", "flight", agg="count")),
            groups=(Group("grouping", Attribute("origin", "flight")),),
        ))
        feats = extract_features(vis, flight_db)
        assert feats.n_rows == 3
        assert feats.unique_ratio_x == 1.0
        assert not feats.x_is_temporal

    def test_empty_result_returns_none(self, flight_db):
        vis = VisQuery("bar", QueryCore(
            select=(Attribute("origin", "flight"), Attribute("price", "flight")),
            filter=Filter(Comparison(">", Attribute("price", "flight"), 10_000)),
        ))
        assert extract_features(vis, flight_db) is None

    def test_correlation_computed_for_scatter(self, flight_db):
        vis = VisQuery("scatter", QueryCore(
            select=(Attribute("price", "flight"), Attribute("price", "flight")),
        ))
        feats = extract_features(vis, flight_db)
        assert feats.correlation == pytest.approx(1.0)

    def test_series_count_for_three_columns(self, flight_db):
        vis = VisQuery("stacked bar", QueryCore(
            select=(
                Attribute("origin", "flight"),
                Attribute("price", "flight", agg="sum"),
                Attribute("destination", "flight"),
            ),
            groups=(
                Group("grouping", Attribute("origin", "flight")),
                Group("grouping", Attribute("destination", "flight")),
            ),
        ))
        feats = extract_features(vis, flight_db)
        assert feats.n_series == 4


class TestLogisticRegression:
    def test_learns_a_separable_boundary(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 3))
        y = (x[:, 0] + 2 * x[:, 1] > 0).astype(float)
        model = LogisticRegression(dim=3, seed=1)
        losses = model.fit(x, y, epochs=300, lr=0.1)
        assert losses[-1] < losses[0]
        accuracy = ((model.predict_proba(x) > 0.5) == y).mean()
        assert accuracy > 0.95


class TestDeepEyeFilter:
    def test_rule_rejection_scores_zero(self):
        assert DeepEyeFilter().score(features(n_rows=1, n_distinct_x=1)) == 0.0

    def test_untrained_filter_uses_teacher(self):
        assert DeepEyeFilter().score(features(n_distinct_x=8, n_rows=8)) == 1.0

    def test_trained_filter_agrees_with_teacher_mostly(self, small_corpus):
        charts = []
        for pair in small_corpus.pairs[:40]:
            db = small_corpus.databases[pair.db_name]
            for candidate in generate_candidates(pair.query, db):
                charts.append((candidate.vis, db))
        filter_model = train_filter_from_candidates(charts, seed=0)
        assert filter_model.model is not None
        agree = total = 0
        for vis, db in charts:
            feats = extract_features(vis, db)
            if feats is None or rule_verdict(feats) is not None:
                continue
            total += 1
            prediction = filter_model.score(feats) >= 0.5
            if prediction == teacher_label(feats):
                agree += 1
        assert total > 20
        assert agree / total > 0.75

    def test_is_good_end_to_end(self, flight_db):
        vis = VisQuery("pie", QueryCore(
            select=(Attribute("origin", "flight"), Attribute("*", "flight", agg="count")),
            groups=(Group("grouping", Attribute("origin", "flight")),),
        ))
        assert DeepEyeFilter().is_good(vis, flight_db)
