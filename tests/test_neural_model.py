"""Model/trainer tests: all three seq2vis variants must learn.

The canonical sanity check for a seq2seq implementation is memorizing a
tiny dataset — if the gradients or the decoding were wrong, loss would
not collapse and exact-match would stay near zero.
"""

import numpy as np
import pytest

from repro.neural.data import Seq2VisDataset, Example
from repro.neural.model import Seq2Vis, VARIANTS
from repro.neural.optimizer import Adam
from repro.neural.trainer import TrainConfig, evaluate_loss, train_model
from repro.nlp.vocab import Vocabulary


def toy_dataset(n_patterns: int = 6) -> Seq2VisDataset:
    """Tiny copy-ish task: each input maps to a short output sequence."""
    rng = np.random.default_rng(0)
    inputs = [f"in{i}" for i in range(n_patterns)]
    outputs = [f"out{i}" for i in range(n_patterns)]
    examples = []
    for i in range(n_patterns):
        src = ["show", inputs[i], "please"]
        tgt = ["select", outputs[i], outputs[(i + 1) % n_patterns]]
        examples.append(Example(src_tokens=src, tgt_tokens=tgt, pair=None))
    in_vocab = Vocabulary.build([e.src_tokens for e in examples])
    out_vocab = Vocabulary.build([e.tgt_tokens for e in examples])
    return Seq2VisDataset(examples=examples, in_vocab=in_vocab, out_vocab=out_vocab)


def exact_match(model: Seq2Vis, dataset: Seq2VisDataset) -> float:
    batch = dataset.batch_of(dataset.examples)
    decoded = model.greedy_decode(
        batch, dataset.out_vocab.bos_id, dataset.out_vocab.eos_id, max_len=8
    )
    hits = 0
    for ids, example in zip(decoded, dataset.examples):
        if dataset.out_vocab.decode(ids) == example.tgt_tokens:
            hits += 1
    return hits / len(dataset.examples)


class TestVariantsLearn:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_memorizes_toy_dataset(self, variant):
        dataset = toy_dataset()
        model = Seq2Vis(
            in_vocab_size=len(dataset.in_vocab),
            out_vocab_size=len(dataset.out_vocab),
            variant=variant,
            embed_dim=24,
            hidden_dim=32,
            seed=1,
        )
        config = TrainConfig(epochs=80, batch_size=6, lr=5e-3, patience=80)
        result = train_model(model, dataset, None, config)
        assert result.train_losses[-1] < result.train_losses[0] * 0.2
        assert exact_match(model, dataset) == 1.0


class TestModelMechanics:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            Seq2Vis(10, 10, variant="transformer")

    def test_loss_is_finite_and_positive(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab), "attention", 16, 24, seed=0)
        batch = dataset.batch_of(dataset.examples)
        loss = model.loss(batch)
        assert np.isfinite(loss.item()) and loss.item() > 0

    def test_gradients_reach_all_parameters(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab), "copy", 16, 24, seed=0)
        batch = dataset.batch_of(dataset.examples)
        model.loss(batch).backward()
        missing = [p.name for p in model.parameters() if p.grad is None]
        assert missing == []

    def test_state_dict_round_trip(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab), "attention", 16, 24, seed=0)
        before = evaluate_loss(model, dataset)
        state = model.state_dict()
        # Perturb and restore.
        for param in model.parameters():
            param.data += 1.0
        assert evaluate_loss(model, dataset) != pytest.approx(before)
        model.load_state_dict(state)
        assert evaluate_loss(model, dataset) == pytest.approx(before)

    def test_pretrained_embeddings_are_used(self):
        dataset = toy_dataset()
        pretrained = np.random.default_rng(3).normal(size=(len(dataset.in_vocab), 16))
        model = Seq2Vis(
            len(dataset.in_vocab), len(dataset.out_vocab), "basic", 16, 24,
            seed=0, pretrained_in=pretrained,
        )
        np.testing.assert_allclose(model.embed_in.weight.data, pretrained)

    def test_pretrained_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Seq2Vis(5, 5, "basic", 16, 24, pretrained_in=np.zeros((5, 8)))

    def test_decode_stops_at_eos(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab), "attention", 16, 24, seed=0)
        batch = dataset.batch_of(dataset.examples[:2])
        decoded = model.greedy_decode(batch, dataset.out_vocab.bos_id, dataset.out_vocab.eos_id, max_len=5)
        assert all(len(seq) <= 5 for seq in decoded)


class TestOptimizer:
    def test_clipping_bounds_global_norm(self):
        from repro.neural.autograd import parameter

        params = [parameter(np.zeros((4, 4))) for _ in range(2)]
        for param in params:
            param.grad = np.full((4, 4), 10.0)
        optimizer = Adam(params, clip_norm=1.0)
        norm = optimizer.clip_gradients()
        assert norm > 1.0
        total = sum(float((p.grad**2).sum()) for p in params)
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_adam_descends_quadratic(self):
        from repro.neural.autograd import parameter
        from repro.neural import autograd as ag

        x = parameter(np.array([[5.0]]))
        optimizer = Adam([x], lr=0.2)
        for _ in range(100):
            optimizer.zero_grad()
            loss = ag.masked_mean(ag.mul(x, x), np.ones((1, 1)))
            loss.backward()
            optimizer.step()
        assert abs(x.data[0, 0]) < 0.5

    def test_early_stopping_restores_best(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab), "basic", 16, 24, seed=0)
        config = TrainConfig(epochs=6, batch_size=6, lr=5e-3, patience=2)
        result = train_model(model, dataset, dataset, config)
        assert result.best_epoch >= 0
        assert len(result.val_losses) >= 1
