"""Shared fixtures: a tiny hand-built database and small session-scoped
corpora so individual tests stay fast."""

from __future__ import annotations

import pytest

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.spider.corpus import CorpusConfig, build_spider_corpus
from repro.storage.schema import Column, Database, ForeignKey, Table


@pytest.fixture()
def flight_db() -> Database:
    """A small flights database with one FK join."""
    flight = Table(
        "flight",
        (
            Column("fno", "C"),
            Column("origin", "C"),
            Column("destination", "C"),
            Column("price", "Q"),
            Column("departure_date", "T"),
        ),
    )
    flight.extend(
        [
            ("F1", "APG", "ATL", 300.0, "2020-01-05"),
            ("F2", "APG", "BOS", 150.0, "2020-02-11"),
            ("F3", "LAX", "ATL", 500.0, "2020-02-20"),
            ("F4", "APG", "SFO", 250.0, "2021-03-02"),
            ("F5", "LAX", "SFO", 700.0, "2021-07-09"),
            ("F6", "BOS", "LAX", 450.0, "2021-11-19"),
        ]
    )
    airline = Table("airline", (Column("code", "C"), Column("name", "C")))
    airline.extend([("F1", "Alpha"), ("F3", "Beta"), ("F5", "Gamma")])
    db = Database(name="flights", domain="flight")
    db.add_table(flight)
    db.add_table(airline)
    db.foreign_keys.append(ForeignKey("airline", "code", "flight", "fno"))
    return db


@pytest.fixture(scope="session")
def small_corpus():
    """A deterministic 12-database corpus shared across tests."""
    return build_spider_corpus(
        CorpusConfig(num_databases=12, pairs_per_database=10, row_scale=0.5, seed=5)
    )


@pytest.fixture(scope="session")
def small_nvbench():
    """A small but full nvBench build (filter training included)."""
    config = NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=12, pairs_per_database=10, row_scale=0.5, seed=5
        ),
        filter_training_pairs=40,
        seed=5,
    )
    return build_nvbench(config=config)
