"""Tests for the NLP substrate: tokenizer, vocab, BLEU, embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.bleu import bleu_score, pairwise_bleu
from repro.nlp.embeddings import nearest_neighbors, train_embeddings
from repro.nlp.tokenize import detokenize, tokenize_nl
from repro.nlp.vocab import BOS, EOS, PAD, UNK, Vocabulary


class TestTokenize:
    def test_lowercases_and_splits_punctuation(self):
        assert tokenize_nl("Show the Price!") == ["show", "the", "price", "!"]

    def test_decimal_numbers_stay_single_tokens(self):
        assert tokenize_nl("price over 42.5 dollars") == [
            "price", "over", "42", ".", "5", "dollars",
        ] or "42.5" in tokenize_nl("price over 42.5 dollars")

    def test_snake_case_kept(self):
        assert "num_employees" in tokenize_nl("the num_employees of teams")

    def test_detokenize_hugs_punctuation(self):
        assert detokenize(["hello", ",", "world", "?"]) == "hello, world?"


class TestVocabulary:
    def test_specials_present(self):
        vocab = Vocabulary.build([["a", "b"]])
        for token in (PAD, UNK, BOS, EOS):
            assert token in vocab

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary.build([["a"]])
        assert vocab.id_of("zzz") == vocab.unk_id

    def test_min_count_filters(self):
        vocab = Vocabulary.build([["a", "a", "b"]], min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_frequency_order(self):
        vocab = Vocabulary.build([["b", "b", "b", "a", "a", "c"]])
        tokens = vocab.tokens
        assert tokens.index("b") < tokens.index("a") < tokens.index("c")

    def test_encode_decode_round_trip(self):
        vocab = Vocabulary.build([["x", "y", "z"]])
        ids = vocab.encode(["x", "z"], add_bos=True, add_eos=True)
        assert ids[0] == vocab.bos_id and ids[-1] == vocab.eos_id
        assert vocab.decode(ids) == ["x", "z"]

    def test_deterministic_construction(self):
        sentences = [["b", "a"], ["a", "c"]]
        assert Vocabulary.build(sentences).tokens == Vocabulary.build(sentences).tokens


class TestBleu:
    def test_identical_sentences_score_high(self):
        tokens = "show the average price of flights".split()
        assert bleu_score(tokens, tokens) == pytest.approx(1.0, abs=0.05)

    def test_disjoint_sentences_score_low(self):
        a = "alpha beta gamma delta epsilon".split()
        b = "one two three four five".split()
        # +1 smoothing floors short disjoint sentences around ~0.25.
        assert bleu_score(a, b) < 0.35
        assert bleu_score(a, b, smooth=False) == 0.0

    def test_empty_inputs(self):
        assert bleu_score([], ["a"]) == 0.0
        assert bleu_score(["a"], []) == 0.0

    def test_brevity_penalty(self):
        reference = "a b c d e f g h".split()
        short = "a b".split()
        longer = "a b c d e f".split()
        assert bleu_score(short, reference) < bleu_score(longer, reference)

    def test_pairwise_needs_two(self):
        assert pairwise_bleu([["a", "b"]]) == 0.0

    def test_pairwise_symmetric_average(self):
        a = "show the price of flights".split()
        b = "display the cost of trips".split()
        assert 0.0 <= pairwise_bleu([a, b]) <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=12),
           st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=12))
    def test_bounded(self, a, b):
        assert 0.0 <= bleu_score(a, b) <= 1.0 + 1e-9


class TestEmbeddings:
    def _corpus(self):
        return [
            "the cat sat on the mat".split(),
            "the dog sat on the rug".split(),
            "a cat and a dog played".split(),
            "the mat and the rug are soft".split(),
        ] * 5

    def test_shape_and_normalization(self):
        corpus = self._corpus()
        vocab = Vocabulary.build(corpus)
        vectors = train_embeddings(corpus, vocab, dim=16, seed=0)
        assert vectors.shape == (len(vocab), 16)
        norms = np.linalg.norm(vectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_cooccurring_words_are_closer(self):
        corpus = self._corpus()
        vocab = Vocabulary.build(corpus)
        vectors = train_embeddings(corpus, vocab, dim=16, seed=0)
        cat, dog, soft = (vectors[vocab.id_of(w)] for w in ("cat", "dog", "soft"))
        assert cat @ dog > cat @ soft

    def test_deterministic(self):
        corpus = self._corpus()
        vocab = Vocabulary.build(corpus)
        a = train_embeddings(corpus, vocab, dim=8, seed=1)
        b = train_embeddings(corpus, vocab, dim=8, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_empty_corpus_still_returns_vectors(self):
        vocab = Vocabulary.build([["a"]])
        vectors = train_embeddings([], vocab, dim=8, seed=0)
        assert vectors.shape == (len(vocab), 8)

    def test_nearest_neighbors_excludes_self(self):
        corpus = self._corpus()
        vocab = Vocabulary.build(corpus)
        vectors = train_embeddings(corpus, vocab, dim=16, seed=0)
        neighbors = nearest_neighbors(vectors, vocab, "cat", k=3)
        assert "cat" not in neighbors and len(neighbors) == 3

    def test_invalid_dim_rejected(self):
        vocab = Vocabulary.build([["a"]])
        with pytest.raises(ValueError):
            train_embeddings([], vocab, dim=0)
