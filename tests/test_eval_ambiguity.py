"""Tests for the ambiguous-question split and accuracy@k."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.eval.ambiguity import (
    accuracy_at_k,
    ambiguous_split,
    coverage_at_k,
    normalize_question,
)
from repro.grammar.serialize import from_tokens

BAR = (
    "visualize bar select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)
PIE = (
    "visualize pie select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)
LINE = (
    "visualize line select flight.departure_date , flight.price"
)


def _tree(text):
    return from_tokens(text.split())


@dataclass
class FakePair:
    nl: str
    vis: object
    db_name: str
    source_sql: Optional[str] = None
    source_nl: Optional[str] = None


class TestNormalizeQuestion:
    def test_drops_chart_flavor_words(self):
        assert normalize_question(
            "Show a bar chart of flights per origin"
        ) == normalize_question("Draw a pie graph of flights per origin")

    def test_keeps_the_data_question(self):
        assert "origin" in normalize_question("flights per origin as a bar chart")

    def test_lowercases_and_strips_punctuation(self):
        assert normalize_question("Flights, per ORIGIN?") == "flights per origin"


class TestAmbiguousSplit:
    def test_groups_by_source_sql_provenance(self):
        pairs = [
            FakePair("bar of flights", _tree(BAR), "flights",
                     source_sql="SELECT o", source_nl="flights per origin"),
            FakePair("pie of flights", _tree(PIE), "flights",
                     source_sql="SELECT o", source_nl="flights per origin"),
            FakePair("price over time", _tree(LINE), "flights",
                     source_sql="SELECT p"),
        ]
        split = ambiguous_split(pairs)
        assert len(split) == 1
        item = split[0]
        assert item.question == "flights per origin"
        assert item.db_name == "flights"
        assert item.num_golds == 2

    def test_duplicate_masked_trees_do_not_make_ambiguity(self):
        pairs = [
            FakePair("bar of flights", _tree(BAR), "flights", source_sql="S"),
            FakePair("another bar", _tree(BAR), "flights", source_sql="S"),
        ]
        assert ambiguous_split(pairs) == []

    def test_normalized_nl_fallback_without_provenance(self):
        pairs = [
            FakePair("show a bar chart of flights per origin", _tree(BAR), "flights"),
            FakePair("show a pie chart of flights per origin", _tree(PIE), "flights"),
        ]
        split = ambiguous_split(pairs)
        assert len(split) == 1
        assert split[0].num_golds == 2

    def test_deterministic_order_and_content(self):
        pairs = [
            FakePair("q bar", _tree(BAR), "flights", source_sql="A"),
            FakePair("q pie", _tree(PIE), "flights", source_sql="A"),
            FakePair("z bar", _tree(BAR), "other", source_sql="B"),
            FakePair("z pie", _tree(PIE), "other", source_sql="B"),
        ]
        first = ambiguous_split(pairs)
        second = ambiguous_split(list(reversed(pairs)))
        assert [(i.db_name, i.question) for i in first] == [
            (i.db_name, i.question) for i in second
        ]
        assert [i.golds for i in first] == [i.golds for i in second]

    def test_benchmark_pairs_produce_a_split(self, small_nvbench):
        split = ambiguous_split(small_nvbench.pairs)
        assert len(split) >= 5
        assert all(item.num_golds >= 2 for item in split)
        # deterministic on the real corpus too
        again = ambiguous_split(small_nvbench.pairs)
        assert [(i.db_name, i.question, i.num_golds) for i in split] == [
            (i.db_name, i.question, i.num_golds) for i in again
        ]


class TestAccuracyAtK:
    def test_coverage_math(self):
        golds = [_tree(BAR), _tree(PIE)]
        ranked = [_tree(BAR), None, _tree(PIE)]
        assert coverage_at_k(ranked, golds, 1) == 0.5
        assert coverage_at_k(ranked, golds, 3) == 1.0
        assert coverage_at_k([], golds, 3) == 0.0
        assert coverage_at_k(ranked, [], 3) == 0.0

    def test_at_3_can_strictly_beat_at_1(self):
        split = ambiguous_split(
            [
                FakePair("q bar", _tree(BAR), "flights", source_sql="A"),
                FakePair("q pie", _tree(PIE), "flights", source_sql="A"),
            ]
        )
        predictions = [[_tree(BAR), _tree(PIE)]]
        accuracy = accuracy_at_k(predictions, split, ks=(1, 3))
        assert accuracy[1] == 0.5
        assert accuracy[3] == 1.0

    def test_length_mismatch_raises(self):
        split = ambiguous_split(
            [
                FakePair("q bar", _tree(BAR), "flights", source_sql="A"),
                FakePair("q pie", _tree(PIE), "flights", source_sql="A"),
            ]
        )
        with pytest.raises(ValueError):
            accuracy_at_k([], split)

    def test_empty_split_scores_zero(self):
        assert accuracy_at_k([], [], ks=(1, 5)) == {1: 0.0, 5: 0.0}
