"""Tests for metrics, splits, and the evaluation harness pieces."""

import pytest

from repro.eval.metrics import component_match, result_match, tree_match
from repro.eval.splits import split_pairs
from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Order,
    QueryCore,
    VisQuery,
)


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


def grouped_bar(agg="sum", vis_type="bar", order=None, filter_=None):
    return VisQuery(vis_type, QueryCore(
        select=(attr("origin"), attr("price", agg=agg)),
        groups=(Group("grouping", attr("origin")),),
        order=order,
        filter=filter_,
    ))


class TestTreeMatch:
    def test_identical_trees_match(self):
        assert tree_match(grouped_bar(), grouped_bar())

    def test_none_prediction_fails(self):
        assert not tree_match(None, grouped_bar())

    def test_different_aggregate_fails(self):
        assert not tree_match(grouped_bar("sum"), grouped_bar("avg"))

    def test_different_type_fails(self):
        assert not tree_match(grouped_bar(vis_type="pie"), grouped_bar())

    def test_values_are_masked_for_comparison(self):
        left = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 100)))
        right = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 999)))
        assert tree_match(left, right)

    def test_filter_structure_still_matters(self):
        left = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 100)))
        right = grouped_bar(filter_=Filter(Comparison("<", attr("price"), 100)))
        assert not tree_match(left, right)


class TestResultMatch:
    def test_different_trees_same_result(self, flight_db):
        """A sorted bar renders the same data as the unsorted bar."""
        plain = grouped_bar()
        sorted_ = grouped_bar(order=Order("desc", attr("price", agg="sum")))
        assert not tree_match(sorted_, plain)
        assert result_match(sorted_, plain, flight_db)

    def test_unexecutable_prediction_fails(self, flight_db):
        broken = VisQuery("bar", QueryCore(
            select=(attr("nonexistent"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("nonexistent")),),
        ))
        assert not result_match(broken, grouped_bar(), flight_db)

    def test_different_data_fails(self, flight_db):
        assert not result_match(grouped_bar("sum"), grouped_bar("avg"), flight_db)


class TestComponentMatch:
    def test_all_components_on_identical_trees(self):
        flags = component_match(grouped_bar(), grouped_bar())
        assert all(flags.values())

    def test_select_differs(self):
        flags = component_match(grouped_bar("avg"), grouped_bar("sum"))
        assert not flags["select"]
        assert flags["grouping"] and flags["join"]

    def test_order_component(self):
        with_order = grouped_bar(order=Order("desc", attr("price", agg="sum")))
        flags = component_match(with_order, grouped_bar())
        assert not flags["order"]
        assert flags["select"]

    def test_where_component(self):
        filtered = grouped_bar(filter_=Filter(Comparison(">", attr("price"), 1)))
        flags = component_match(filtered, grouped_bar())
        assert not flags["where"]

    def test_join_component(self):
        joined = VisQuery("bar", QueryCore(
            select=(attr("name", table="airline"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("name", table="airline")),),
        ))
        flags = component_match(joined, grouped_bar())
        assert not flags["join"]

    def test_none_prediction_fails_everything(self):
        flags = component_match(None, grouped_bar())
        assert not any(flags.values())

    def test_binning_component(self):
        binned = VisQuery("bar", QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="year"),),
        ))
        other = VisQuery("bar", QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="month"),),
        ))
        flags = component_match(binned, other)
        assert not flags["binning"]
        assert flags["select"]


class TestSplits:
    def test_paper_ratios(self):
        pairs = list(range(1000))
        train, val, test = split_pairs(pairs)
        assert len(train) == 800
        assert len(val) == 45
        assert len(test) == 155

    def test_partition_property(self):
        pairs = list(range(317))
        train, val, test = split_pairs(pairs, seed=3)
        combined = sorted(train + val + test)
        assert combined == pairs

    def test_deterministic_per_seed(self):
        pairs = list(range(100))
        assert split_pairs(pairs, seed=5) == split_pairs(pairs, seed=5)
        assert split_pairs(pairs, seed=5) != split_pairs(pairs, seed=6)

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ValueError):
            split_pairs([1, 2, 3], ratios=(0.5, 0.2, 0.2))
