"""Tests for the value-slot filling heuristic (Section 4.2)."""

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Filter,
    InSubquery,
    Like,
    QueryCore,
    SQLQuery,
    VisQuery,
)
from repro.grammar.serialize import VALUE_TOKEN, from_tokens, to_tokens
from repro.neural.slots import fill_value_slots


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


def masked(query):
    """Round-trip through the masked token form, as predictions arrive."""
    return from_tokens(to_tokens(query, mask_values=True))


class TestNumericSlots:
    def test_single_number(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Comparison(">", attr("price"), 0)),
        )))
        filled = fill_value_slots(query, "Show flights with price above 250.", flight_db)
        assert filled.cores[0].filter.root.value == 250

    def test_numbers_assigned_in_order(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Between(attr("price"), 0, 0)),
        )))
        filled = fill_value_slots(
            query, "flights whose price is between 100 and 400", flight_db
        )
        root = filled.cores[0].filter.root
        assert (root.low, root.high) == (100, 400)

    def test_decimal_values(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Comparison("<", attr("price"), 0)),
        )))
        filled = fill_value_slots(query, "price under 99.5 dollars", flight_db)
        assert filled.cores[0].filter.root.value == 99.5


class TestCategoricalSlots:
    def test_column_value_mentioned_in_nl(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Comparison("=", attr("origin"), "")),
        )))
        filled = fill_value_slots(query, "Show flights departing from LAX.", flight_db)
        assert filled.cores[0].filter.root.value == "LAX"

    def test_longest_mention_wins(self, flight_db):
        from repro.storage.schema import Column, Table

        table = Table("city", (Column("city_id", "C"), Column("name", "C")))
        table.extend([(1, "York"), (2, "New York")])
        flight_db.add_table(table)
        query = masked(SQLQuery(QueryCore(
            select=(attr("city_id", table="city"),),
            filter=Filter(Comparison("=", attr("name", table="city"), "")),
        )))
        filled = fill_value_slots(query, "Cities named New York please.", flight_db)
        assert filled.cores[0].filter.root.value == "New York"


class TestTemporalAndLike:
    def test_iso_date_extracted(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Comparison(">", attr("departure_date"), "")),
        )))
        filled = fill_value_slots(query, "flights after 2020-06-15", flight_db)
        assert filled.cores[0].filter.root.value == "2020-06-15"

    def test_like_from_contains_phrase(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Like(attr("destination"), VALUE_TOKEN)),
        )))
        filled = fill_value_slots(
            query, "destinations that contain the word ATL", flight_db
        )
        assert filled.cores[0].filter.root.pattern == "%ATL%"

    def test_like_from_quoted_phrase(self, flight_db):
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(Like(attr("destination"), VALUE_TOKEN)),
        )))
        filled = fill_value_slots(query, "names containing 'San'", flight_db)
        assert filled.cores[0].filter.root.pattern == "%San%"


class TestStructuralBehaviour:
    def test_no_filter_is_identity(self, flight_db):
        query = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
        ))
        assert fill_value_slots(query, "whatever", flight_db) == query

    def test_nested_subquery_filled(self, flight_db):
        inner = QueryCore(
            select=(attr("origin"),),
            filter=Filter(Comparison(">", attr("price"), 0)),
        )
        query = masked(SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(InSubquery(attr("origin"), inner)),
        )))
        filled = fill_value_slots(
            query, "flights from origins where price exceeds 600", flight_db
        )
        nested = filled.cores[0].filter.root.query
        assert nested.filter.root.value == 600

    def test_accuracy_on_synthesized_pairs(self, small_nvbench):
        """End-to-end slot accuracy on real benchmark pairs (paper
        reports ~92.3% for its heuristic; ours should be well above
        half on pairs that carry values)."""
        total = hits = 0
        for pair in small_nvbench.pairs:
            gold_tokens = to_tokens(pair.vis)
            masked_tokens = to_tokens(pair.vis, mask_values=True)
            if gold_tokens == masked_tokens:
                continue  # no value slots in this pair
            db = small_nvbench.database_of(pair)
            prediction = from_tokens(masked_tokens)
            filled = fill_value_slots(prediction, pair.nl, db)
            total += 1
            hits += to_tokens(filled) == gold_tokens
        assert total > 10
        assert hits / total > 0.6
