"""Schema and temporal-binning unit tests."""

import pytest

from repro.storage.schema import Column, Database, ForeignKey, SchemaError, Table
from repro.storage.temporal import bin_temporal, parse_temporal, weekday_sort_key


class TestColumnAndTable:
    def test_rejects_unknown_column_type(self):
        with pytest.raises(SchemaError):
            Column(name="x", ctype="Z")

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", (Column("a", "C"), Column("a", "Q")))

    def test_insert_checks_arity(self):
        table = Table("t", (Column("a", "C"), Column("b", "Q")))
        with pytest.raises(SchemaError):
            table.insert(("only-one",))

    def test_column_values(self):
        table = Table("t", (Column("a", "C"), Column("b", "Q")))
        table.extend([("x", 1), ("y", 2)])
        assert table.column_values("b") == [1, 2]

    def test_unknown_column_lookup(self):
        table = Table("t", (Column("a", "C"),))
        with pytest.raises(SchemaError):
            table.column("missing")


class TestDatabase:
    def _db(self):
        db = Database("d")
        db.add_table(Table("a", (Column("id", "C"), Column("v", "Q"))))
        db.add_table(Table("b", (Column("id", "C"), Column("a_id", "C"))))
        db.add_table(Table("c", (Column("id", "C"), Column("b_id", "C"))))
        db.foreign_keys.append(ForeignKey("b", "a_id", "a", "id"))
        db.foreign_keys.append(ForeignKey("c", "b_id", "b", "id"))
        return db

    def test_duplicate_table_rejected(self):
        db = self._db()
        with pytest.raises(SchemaError):
            db.add_table(Table("a", (Column("id", "C"),)))

    def test_column_type_lookup(self):
        assert self._db().column_type("a", "v") == "Q"
        assert self._db().column_type("a", "*") == "Q"

    def test_join_path_direct(self):
        path = self._db().join_path(["a", "b"])
        assert len(path) == 1

    def test_join_path_transitive(self):
        path = self._db().join_path(["a", "c"])
        assert len(path) == 2

    def test_join_path_prunes_unneeded_edges(self):
        path = self._db().join_path(["b", "c"])
        assert len(path) == 1
        assert {path[0].table, path[0].ref_table} == {"b", "c"}

    def test_join_path_unreachable(self):
        db = self._db()
        db.add_table(Table("z", (Column("id", "C"),)))
        with pytest.raises(SchemaError):
            db.join_path(["a", "z"])

    def test_totals(self):
        db = self._db()
        db.table("a").insert((1, 2.0))
        assert db.total_rows == 1
        assert db.total_columns == 6


class TestTemporal:
    def test_parse_full_datetime(self):
        assert parse_temporal("2020-03-04 10:30").hour == 10

    def test_parse_date(self):
        assert parse_temporal("2020-03-04").month == 3

    def test_parse_year_integer(self):
        assert parse_temporal(1995).year == 1995

    def test_parse_garbage_returns_none(self):
        assert parse_temporal("not a date") is None
        assert parse_temporal(None) is None

    def test_bin_year_quarter_month(self):
        assert bin_temporal("2020-05-15", "year") == "2020"
        assert bin_temporal("2020-05-15", "quarter") == "2020-Q2"
        assert bin_temporal("2020-05-15", "month") == "2020-05"

    def test_bin_weekday(self):
        # 2020-05-15 was a Friday.
        assert bin_temporal("2020-05-15", "weekday") == "Friday"

    def test_bin_hour_minute(self):
        assert bin_temporal("2020-05-15 09:42", "hour") == "09:00"
        assert bin_temporal("2020-05-15 09:42", "minute") == "09:42"

    def test_bin_unknown_unit(self):
        with pytest.raises(ValueError):
            bin_temporal("2020-05-15", "fortnight")

    def test_weekday_sort_order(self):
        days = ["Sunday", "Monday", "Friday"]
        assert sorted(days, key=weekday_sort_key) == ["Monday", "Friday", "Sunday"]
