"""Tests for model persistence and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.neural.data import build_dataset
from repro.neural.model import Seq2Vis
from repro.neural.persist import load_model, normalize_model_path, save_model
from repro.nlp.vocab import SPECIALS, Vocabulary


class TestPersistence:
    def _model_and_vocabs(self, variant="attention"):
        in_vocab = Vocabulary.build([["show", "the", "price", "flight.price"]])
        out_vocab = Vocabulary.build([["select", "flight.price"]])
        model = Seq2Vis(len(in_vocab), len(out_vocab), variant, 12, 16, seed=3)
        return model, in_vocab, out_vocab

    @pytest.mark.parametrize("variant", ["basic", "attention", "copy"])
    def test_round_trip_preserves_weights(self, tmp_path, variant):
        model, in_vocab, out_vocab = self._model_and_vocabs(variant)
        path = str(tmp_path / "model.npz")
        save_model(model, in_vocab, out_vocab, path)
        loaded, in2, out2 = load_model(path)
        assert loaded.variant == variant
        assert in2.tokens == in_vocab.tokens
        assert out2.tokens == out_vocab.tokens
        for original, restored in zip(model.parameters(), loaded.parameters()):
            np.testing.assert_array_equal(original.data, restored.data)

    def test_suffixless_path_round_trips(self, tmp_path):
        model, in_vocab, out_vocab = self._model_and_vocabs()
        bare = tmp_path / "attn-model"
        written = save_model(model, in_vocab, out_vocab, str(bare))
        assert written == bare.with_name("attn-model.npz")
        assert written.exists()
        assert not bare.exists()
        # Load works with either spelling of the path.
        for spec in (str(bare), str(written)):
            loaded, in2, out2 = load_model(spec)
            assert in2.tokens == in_vocab.tokens
            assert out2.tokens == out_vocab.tokens
            for original, restored in zip(model.parameters(), loaded.parameters()):
                np.testing.assert_array_equal(original.data, restored.data)

    def test_normalize_model_path(self):
        from pathlib import Path

        assert normalize_model_path("m") == Path("m.npz")
        assert normalize_model_path("m.npz") == Path("m.npz")
        assert normalize_model_path("dir.v2/m") == Path("dir.v2/m.npz")
        assert normalize_model_path("m.ckpt") == Path("m.ckpt.npz")

    def test_round_trip_keeps_specials_unique(self, tmp_path):
        model, in_vocab, out_vocab = self._model_and_vocabs()
        path = str(tmp_path / "model")
        written = save_model(model, in_vocab, out_vocab, path)
        _, in2, out2 = load_model(written)
        for vocab in (in2, out2):
            specials = [t for t in vocab.tokens if t in SPECIALS]
            assert specials == list(vocab.tokens[: len(specials)])
            assert len(specials) == len(set(specials)), "specials duplicated"

    def test_loaded_model_decodes_identically(self, tmp_path, small_nvbench):
        pairs = small_nvbench.pairs[:40]
        dataset = build_dataset(pairs, small_nvbench.databases)
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                        "attention", 16, 24, seed=1)
        path = str(tmp_path / "model.npz")
        save_model(model, dataset.in_vocab, dataset.out_vocab, path)
        loaded, _, _ = load_model(path)
        batch = dataset.batch_of(dataset.examples[:4])
        a = model.greedy_decode(batch, dataset.out_vocab.bos_id, dataset.out_vocab.eos_id)
        b = loaded.greedy_decode(batch, dataset.out_vocab.bos_id, dataset.out_vocab.eos_id)
        assert a == b


class TestCLI:
    def test_build_corpus_and_benchmark(self, tmp_path, capsys):
        corpus_path = str(tmp_path / "corpus.json")
        code = main([
            "build-corpus", "--databases", "3", "--pairs-per-db", "4",
            "--row-scale", "0.3", "--seed", "2", "--out", corpus_path,
        ])
        assert code == 0
        pairs_path = str(tmp_path / "bench.json")
        code = main([
            "build-benchmark", "--corpus", corpus_path,
            "--databases", "3", "--pairs-per-db", "4",
            "--row-scale", "0.3", "--seed", "2", "--out", pairs_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(NL, VIS) pairs" in out

        code = main(["stats", "--corpus", corpus_path, "--pairs", pairs_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "databases: 3" in out

    def test_train_and_translate(self, tmp_path, capsys):
        corpus_path = str(tmp_path / "corpus.json")
        pairs_path = str(tmp_path / "bench.json")
        # Deliberately suffixless: train must report (and translate must
        # accept) the normalized .npz path.
        model_path = str(tmp_path / "model")
        main(["build-corpus", "--databases", "3", "--pairs-per-db", "5",
              "--row-scale", "0.3", "--seed", "4", "--out", corpus_path])
        main(["build-benchmark", "--corpus", corpus_path, "--out", pairs_path])
        code = main([
            "train", "--corpus", corpus_path, "--pairs", pairs_path,
            "--variant", "basic", "--epochs", "2", "--embed-dim", "16",
            "--hidden-dim", "24", "--out", model_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"saved model to {model_path}.npz" in out
        assert (tmp_path / "model.npz").exists()

        from repro.spider.corpus import load_corpus

        db_name = sorted(load_corpus(corpus_path).databases)[0]
        code = main([
            "translate", "--corpus", corpus_path, "--model", model_path,
            "--database", db_name, "how many items per category?",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted tokens:" in out

        for fmt in ("vega-lite", "ascii"):
            code = main([
                "translate", "--corpus", corpus_path, "--model", model_path,
                "--database", db_name, "--format", fmt,
                "how many items per category?",
            ])
            assert code == 0
            capsys.readouterr()

    def test_translate_unknown_database(self, tmp_path, capsys):
        corpus_path = str(tmp_path / "corpus.json")
        pairs_path = str(tmp_path / "bench.json")
        model_path = str(tmp_path / "model.npz")
        main(["build-corpus", "--databases", "2", "--pairs-per-db", "3",
              "--row-scale", "0.3", "--seed", "5", "--out", corpus_path])
        main(["build-benchmark", "--corpus", corpus_path, "--out", pairs_path])
        main(["train", "--corpus", corpus_path, "--pairs", pairs_path,
              "--variant", "basic", "--epochs", "1", "--embed-dim", "12",
              "--hidden-dim", "16", "--out", model_path])
        capsys.readouterr()
        code = main([
            "translate", "--corpus", corpus_path, "--model", model_path,
            "--database", "nope", "anything",
        ])
        assert code == 2


class TestShardedCLI:
    """build-benchmark --out DIR + stats/train --benchmark DIR."""

    BASE = ["build-benchmark", "--databases", "2", "--pairs-per-db", "3",
            "--row-scale", "0.3", "--seed", "3"]

    def test_build_resume_and_stats_round_trip(self, tmp_path, capsys):
        bench_dir = str(tmp_path / "bench_dir")
        assert main(self.BASE + ["--out", bench_dir]) == 0
        out = capsys.readouterr().out
        assert "database shards" in out
        assert (tmp_path / "bench_dir" / "manifest.json").is_file()

        # resume over a finished build rebuilds nothing
        assert main(self.BASE + ["--out", bench_dir, "--resume"]) == 0
        assert "skipped clean 2" in capsys.readouterr().out

        assert main(["stats", "--benchmark", bench_dir]) == 0
        assert "databases: 2" in capsys.readouterr().out

    def test_stats_flag_validation(self, tmp_path, capsys):
        assert main(["stats"]) == 2
        assert "--benchmark" in capsys.readouterr().err
        assert main(["stats", "--benchmark", str(tmp_path / "d"),
                     "--corpus", "x.json"]) == 2
        assert "pick one" in capsys.readouterr().err

    def test_resume_rejects_json_out(self, tmp_path, capsys):
        code = main(self.BASE + ["--out", str(tmp_path / "bench.json"),
                                 "--resume"])
        assert code == 2
        assert "shard directory" in capsys.readouterr().err

    def test_stream_build_and_train(self, tmp_path, capsys):
        bench_dir = str(tmp_path / "streamed")
        code = main(self.BASE + ["--stream", "--out", bench_dir])
        assert code == 0
        capsys.readouterr()
        code = main([
            "train", "--benchmark", bench_dir, "--variant", "basic",
            "--epochs", "1", "--embed-dim", "12", "--hidden-dim", "16",
            "--out", str(tmp_path / "model"),
        ])
        assert code == 0
        assert "saved model to" in capsys.readouterr().out

    def test_paper_scale_capped_smoke(self, tmp_path, capsys):
        bench_dir = str(tmp_path / "paper")
        code = main(["build-benchmark", "--paper-scale",
                     "--max-databases", "1", "--out", bench_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 database shards" in out
