"""Unit tests for the perf layer: profiler, execution cache, batch scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.filter_model import (
    DeepEyeFilter,
    extract_features,
    train_filter_from_candidates,
)
from repro.core.tree_edits import generate_candidates
from repro.perf import BuildProfiler, stage
from repro.sqlparse.parser import parse_sql
from repro.storage.executor import ExecutionCache, ExecutionError, Executor


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBuildProfiler:
    def test_stage_accumulates_time_and_calls(self):
        clock = FakeClock()
        profiler = BuildProfiler(clock=clock)
        for _ in range(3):
            with profiler.stage("work"):
                clock.now += 0.5
        report = profiler.report()
        assert report["stages"]["work"] == {"calls": 3, "seconds": 1.5}
        assert report["total_seconds"] == 1.5

    def test_stage_records_on_exception(self):
        clock = FakeClock()
        profiler = BuildProfiler(clock=clock)
        with pytest.raises(ValueError):
            with profiler.stage("boom"):
                clock.now += 1.0
                raise ValueError("x")
        assert profiler.stages["boom"].seconds == 1.0

    def test_counters_and_merge(self):
        first = BuildProfiler(clock=FakeClock())
        first.count("hits", 2)
        first.record("run", 1.0)
        second = BuildProfiler(clock=FakeClock())
        second.count("hits", 3)
        second.record("run", 2.0, calls=4)
        first.merge_report(second.report())
        assert first.counters["hits"] == 5
        assert first.stages["run"].calls == 5
        assert first.stages["run"].seconds == 3.0

    def test_null_profiler_stage_helper(self):
        # Must be a no-op, not an error.
        with stage(None, "anything"):
            pass

    def test_summary_mentions_stages(self):
        profiler = BuildProfiler(clock=FakeClock())
        profiler.record("synthesize", 2.0)
        profiler.count("cache_hits", 7)
        text = profiler.summary()
        assert "synthesize" in text
        assert "cache_hits" in text


class TestExecutionCache:
    def test_hit_returns_same_result(self, flight_db):
        cache = ExecutionCache()
        query = parse_sql("SELECT origin, price FROM flight", flight_db)
        first = Executor(flight_db, cache=cache).execute(query)
        second = Executor(flight_db, cache=cache).execute(query)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_key_ignores_vis_type(self, flight_db):
        from repro.grammar.ast_nodes import VisQuery

        query = parse_sql(
            "SELECT origin, COUNT(*) FROM flight GROUP BY origin", flight_db
        )
        bar = VisQuery(vis_type="bar", body=query.body)
        pie = VisQuery(vis_type="pie", body=query.body)
        assert ExecutionCache.key_of("flights", bar) == ExecutionCache.key_of(
            "flights", pie
        )
        assert ExecutionCache.key_of("flights", bar) != ExecutionCache.key_of(
            "other_db", bar
        )

    def test_failures_are_cached(self, flight_db):
        cache = ExecutionCache()
        query = parse_sql("SELECT origin, price FROM flight ORDER BY fno", flight_db)
        for _ in range(2):
            with pytest.raises(ExecutionError):
                Executor(flight_db, cache=cache).execute(query)
        assert cache.misses == 1 and cache.hits == 1

    def test_cached_featurization_matches_uncached(self, flight_db):
        cache = ExecutionCache()
        query = parse_sql("SELECT origin, price FROM flight", flight_db)
        for candidate in generate_candidates(query, flight_db):
            plain = extract_features(candidate.vis, flight_db)
            cached = extract_features(candidate.vis, flight_db, cache=cache)
            assert plain == cached
        assert cache.hits > 0
        assert cache.stats()["hit_rate"] > 0.0


class TestBatchScoring:
    def _features(self, flight_db, sql="SELECT origin, price FROM flight"):
        query = parse_sql(sql, flight_db)
        out = []
        for candidate in generate_candidates(query, flight_db):
            features = extract_features(candidate.vis, flight_db)
            if features is not None:
                out.append(features)
        return out

    def test_score_batch_matches_score_untrained(self, flight_db):
        chart_filter = DeepEyeFilter()
        features = self._features(flight_db)
        assert features
        batch = chart_filter.score_batch(features)
        single = [chart_filter.score(f) for f in features]
        assert np.allclose(batch, single)

    def test_score_batch_matches_score_trained(self, flight_db):
        query = parse_sql("SELECT origin, price FROM flight", flight_db)
        charts = [
            (candidate.vis, flight_db)
            for candidate in generate_candidates(query, flight_db)
        ]
        chart_filter = train_filter_from_candidates(charts, seed=1)
        features = self._features(flight_db)
        batch = chart_filter.score_batch(features)
        single = [chart_filter.score(f) for f in features]
        assert np.allclose(batch, single)

    def test_score_batch_empty(self):
        assert DeepEyeFilter().score_batch([]).shape == (0,)
