"""Tests for the tree-edit candidate generation (Section 2.3)."""

import pytest

from repro.core.tree_edits import TreeEditConfig, generate_candidates
from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    VisQuery,
)
from repro.grammar.validate import validate_query
from repro.sqlparse import parse_sql


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


class TestCandidateGeneration:
    def test_single_categorical_yields_count_charts(self, flight_db):
        query = SQLQuery(QueryCore(select=(attr("origin"),)))
        candidates = generate_candidates(query, flight_db)
        types = {c.vis.vis_type for c in candidates}
        assert types == {"bar", "pie"}
        for candidate in candidates:
            core = candidate.vis.primary_core
            assert core.select[1].agg == "count"
            assert core.groups[0].kind == "grouping"
            assert candidate.edit.added_count

    def test_candidates_are_always_valid(self, small_corpus):
        for pair in small_corpus.pairs:
            db = small_corpus.databases[pair.db_name]
            for candidate in generate_candidates(pair.query, db):
                validate_query(candidate.vis)

    def test_filter_subtree_is_invariant(self, flight_db):
        query = parse_sql(
            "SELECT origin, price FROM flight WHERE price > 200", flight_db
        )
        for candidate in generate_candidates(query, flight_db):
            assert candidate.vis.primary_core.filter == query.cores[0].filter

    def test_existing_grouping_is_kept(self, flight_db):
        query = parse_sql(
            "SELECT origin, COUNT(*) FROM flight GROUP BY origin", flight_db
        )
        for candidate in generate_candidates(query, flight_db):
            group_columns = [g.attr.column for g in candidate.vis.primary_core.groups]
            assert "origin" in group_columns

    def test_superlative_attr_never_orphaned(self, flight_db):
        query = parse_sql(
            "SELECT fno, price FROM flight ORDER BY price DESC LIMIT 3", flight_db
        )
        for candidate in generate_candidates(query, flight_db):
            core = candidate.vis.primary_core
            if core.superlative is not None:
                names = {a.qualified_name for a in core.select}
                assert core.superlative.attr.qualified_name in names

    def test_order_deletion_variant_exists(self, flight_db):
        query = parse_sql(
            "SELECT origin, price FROM flight ORDER BY price ASC", flight_db
        )
        candidates = generate_candidates(query, flight_db)
        with_order = [c for c in candidates if c.vis.primary_core.order is not None]
        without_order = [c for c in candidates if c.vis.primary_core.order is None]
        assert with_order and without_order
        deleted = [c for c in without_order if c.edit.deleted_order is not None]
        assert deleted

    def test_temporal_binning_units_enumerated(self, flight_db):
        config = TreeEditConfig(temporal_units=("year", "month"))
        query = SQLQuery(QueryCore(select=(attr("departure_date"), attr("price"))))
        candidates = generate_candidates(query, flight_db, config)
        units = {
            g.bin_unit
            for c in candidates
            for g in c.vis.primary_core.groups
            if g.kind == "binning" and g.attr.column == "departure_date"
        }
        assert units == {"year", "month"}

    def test_numeric_histogram_candidate(self, flight_db):
        query = SQLQuery(QueryCore(select=(attr("price"),)))
        candidates = generate_candidates(query, flight_db)
        assert candidates
        for candidate in candidates:
            group = candidate.vis.primary_core.groups[0]
            assert group.kind == "binning" and group.bin_unit == "numeric"

    def test_deleted_attrs_recorded(self, flight_db):
        query = SQLQuery(QueryCore(select=(attr("origin"), attr("price"), attr("destination"))))
        candidates = generate_candidates(query, flight_db)
        two_attr = [c for c in candidates if len(c.vis.primary_core.select) == 2]
        assert any(len(c.edit.deleted_attrs) == 1 for c in two_attr)

    def test_aggregate_variants(self, flight_db):
        config = TreeEditConfig(aggregates=("sum", "avg", "max"))
        query = SQLQuery(QueryCore(select=(attr("origin"), attr("price"))))
        candidates = generate_candidates(query, flight_db, config)
        aggs = {
            c.vis.primary_core.select[1].agg
            for c in candidates
            if c.vis.primary_core.groups and not c.edit.added_count
        }
        assert {"sum", "avg", "max"} <= aggs

    def test_sorted_variant_for_bar(self, flight_db):
        query = SQLQuery(QueryCore(select=(attr("origin"), attr("price"))))
        candidates = generate_candidates(query, flight_db)
        sorted_bars = [
            c for c in candidates
            if c.vis.vis_type == "bar" and c.edit.added_order is not None
        ]
        assert sorted_bars
        assert all(c.vis.primary_core.order is not None for c in sorted_bars)

    def test_max_candidates_cap(self, flight_db):
        config = TreeEditConfig(max_candidates=3)
        query = SQLQuery(QueryCore(select=(attr("origin"), attr("price"), attr("departure_date"))))
        assert len(generate_candidates(query, flight_db, config)) <= 3

    def test_candidates_are_deduplicated(self, flight_db):
        query = SQLQuery(QueryCore(select=(attr("origin"), attr("price"))))
        candidates = generate_candidates(query, flight_db)
        trees = [c.vis for c in candidates]
        assert len(trees) == len(set(trees))


class TestSetQueryCandidates:
    def test_chartable_set_query(self, flight_db):
        left = QueryCore(
            select=(attr("fno"), attr("price")),
            filter=Filter(Comparison(">", attr("price"), 100)),
        )
        right = QueryCore(
            select=(attr("fno"), attr("price")),
            filter=Filter(Comparison("<", attr("price"), 600)),
        )
        query = SQLQuery(SetQuery("intersect", left, right))
        candidates = generate_candidates(query, flight_db)
        assert candidates
        for candidate in candidates:
            assert isinstance(candidate.vis.body, SetQuery)
            assert not candidate.edit.has_deletions

    def test_single_attr_set_query_has_no_charts(self, flight_db):
        left = QueryCore(select=(attr("origin"),))
        right = QueryCore(select=(attr("destination"),))
        query = SQLQuery(SetQuery("union", left, right))
        assert generate_candidates(query, flight_db) == []
