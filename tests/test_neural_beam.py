"""Tests for beam-search decoding (extension over the paper's greedy).

The batched beam (`beam_decode_batch` / `beam_search_batch`) must be
token-identical to the per-example reference (`beam_decode`) at every
width — the fast path is only an optimization if nothing observable
changes.
"""

import os

import numpy as np
import pytest

from repro.neural.data import Example, Seq2VisDataset
from repro.neural.model import BeamCandidate, Seq2Vis, VARIANTS
from repro.neural.trainer import TrainConfig, train_model
from repro.nlp.vocab import Vocabulary
from repro.obs import InMemoryExporter, Tracer

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from test_neural_model import exact_match, toy_dataset  # noqa: E402


def ragged_dataset() -> Seq2VisDataset:
    """Sources of wildly different lengths, including a one-token one."""
    sources = [
        ["show"],
        ["show", "in1", "please"],
        ["show", "in2", "please", "right", "now", "thanks"],
        ["please", "in0"],
    ]
    targets = [
        ["select", "out0"],
        ["select", "out1", "out2"],
        ["select", "out2", "out3", "out0"],
        ["select", "out0", "out1"],
    ]
    examples = [
        Example(src_tokens=s, tgt_tokens=t, pair=None)
        for s, t in zip(sources, targets)
    ]
    in_vocab = Vocabulary.build([e.src_tokens for e in examples])
    out_vocab = Vocabulary.build([e.tgt_tokens for e in examples])
    return Seq2VisDataset(
        examples=examples, in_vocab=in_vocab, out_vocab=out_vocab
    )


@pytest.fixture(scope="module")
def trained():
    dataset = toy_dataset()
    model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                    "attention", 24, 32, seed=1)
    train_model(model, dataset, None,
                TrainConfig(epochs=60, batch_size=6, lr=5e-3, patience=60))
    return model, dataset


class TestBeamDecode:
    def test_matches_training_targets(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        beams = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                  dataset.out_vocab.eos_id, beam_width=3)
        hits = sum(
            dataset.out_vocab.decode(ids) == example.tgt_tokens
            for ids, example in zip(beams, dataset.examples)
        )
        assert hits == len(dataset.examples)

    def test_beam1_equals_greedy(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples[:3])
        greedy = model.greedy_decode(batch, dataset.out_vocab.bos_id,
                                     dataset.out_vocab.eos_id, max_len=8)
        beam = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                 dataset.out_vocab.eos_id, beam_width=1,
                                 max_len=8, length_penalty=0.0)
        assert beam == greedy

    def test_respects_max_len(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples[:2])
        beams = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                  dataset.out_vocab.eos_id, beam_width=2,
                                  max_len=3)
        assert all(len(ids) <= 3 for ids in beams)

    def test_works_for_copy_variant(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                        "copy", 16, 24, seed=2)
        batch = dataset.batch_of(dataset.examples[:2])
        beams = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                  dataset.out_vocab.eos_id, beam_width=2,
                                  max_len=5)
        assert len(beams) == 2


class TestBatchedBeam:
    """`beam_decode_batch` vs the per-example reference implementation."""

    @pytest.mark.parametrize("beam_width", [1, 2, 4])
    def test_identical_to_sequential(self, trained, beam_width):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        reference = model.beam_decode(
            batch, vocab.bos_id, vocab.eos_id, beam_width=beam_width
        )
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=beam_width
        )
        assert batched == reference

    def test_beam1_equals_greedy_batch(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        greedy = model.greedy_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, max_len=8
        )
        beam = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=1, max_len=8,
            length_penalty=0.0,
        )
        assert beam == greedy

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_ragged_batch_identity(self, variant):
        dataset = ragged_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                        variant, 16, 24, seed=3)
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        reference = model.beam_decode(
            batch, vocab.bos_id, vocab.eos_id, beam_width=3, max_len=7
        )
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=3, max_len=7
        )
        assert batched == reference

    def test_single_example_single_token_source(self, trained):
        model, _ = trained
        dataset = ragged_dataset()
        # Vocab sizes differ; build a model matched to the ragged vocabs.
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                        "attention", 16, 24, seed=4)
        batch = dataset.batch_of(dataset.examples[:1])
        vocab = dataset.out_vocab
        reference = model.beam_decode(
            batch, vocab.bos_id, vocab.eos_id, beam_width=2, max_len=6
        )
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=2, max_len=6
        )
        assert batched == reference

    def test_finished_beams_stop_stepping(self, trained):
        """Once every beam has emitted EOS no further steps run."""
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        exporter = InMemoryExporter()
        tracer = Tracer(exporter)
        short = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=2, max_len=60,
            tracer=tracer,
        )
        steps = [
            r for r in exporter.records() if r["name"] == "beam.step"
        ]
        longest = max(len(ids) for ids in short)
        # One step per emitted token plus the EOS step — far under 60.
        assert len(steps) <= longest + 1
        # And the early exit cannot change the result.
        assert short == model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=2, max_len=longest + 1
        )

    def test_grammar_mask_parity_and_effect(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        banned = vocab.id_of("out1")
        mask = np.ones(len(vocab), dtype=bool)
        mask[banned] = False
        reference = model.beam_decode(
            batch, vocab.bos_id, vocab.eos_id, beam_width=3, token_mask=mask
        )
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=3, token_mask=mask
        )
        assert batched == reference
        assert all(banned not in ids for ids in batched)

    def test_encoded_reuse_identity(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        encoded = model.encode_batch(batch)
        direct = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=3
        )
        reused = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=3, encoded=encoded
        )
        assert reused == direct

    def test_candidates_ranked_and_bounded(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        ranked = model.beam_search_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=4, num_candidates=3
        )
        assert len(ranked) == len(dataset.examples)
        for example in ranked:
            assert 1 <= len(example) <= 3
            assert all(isinstance(c, BeamCandidate) for c in example)
            scores = [c.score for c in example]
            assert scores == sorted(scores)
        # The top candidate is exactly the single-best decode.
        best = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id, beam_width=4
        )
        assert [example[0].tokens for example in ranked] == best

    def test_width_wider_than_vocab_rejected(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples[:1])
        vocab = dataset.out_vocab
        with pytest.raises(ValueError):
            model.beam_search_batch(
                batch, vocab.bos_id, vocab.eos_id,
                beam_width=len(vocab) + 1,
            )

@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("CI"),
    reason="heavy width x variant identity matrix; runs on CI (CI=1)",
)
class TestHeavyIdentityMatrix:
    """The full width x variant identity sweep, CI-only.

    Tier-1 keeps the cheap spot checks above; this class re-proves
    batched == sequential for every variant at every width up to the
    output-vocab ceiling, on the ragged fixture where padding bugs
    actually surface.
    """

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("beam_width", [2, 3, 5])
    def test_identity(self, variant, beam_width):
        dataset = ragged_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                        variant, 16, 24, seed=beam_width)
        batch = dataset.batch_of(dataset.examples)
        vocab = dataset.out_vocab
        reference = model.beam_decode(
            batch, vocab.bos_id, vocab.eos_id,
            beam_width=beam_width, max_len=7,
        )
        batched = model.beam_decode_batch(
            batch, vocab.bos_id, vocab.eos_id,
            beam_width=beam_width, max_len=7,
        )
        assert batched == reference
