"""Tests for beam-search decoding (extension over the paper's greedy)."""

import numpy as np
import pytest

from repro.neural.model import Seq2Vis, VARIANTS
from repro.neural.trainer import TrainConfig, train_model

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from test_neural_model import exact_match, toy_dataset  # noqa: E402


@pytest.fixture(scope="module")
def trained():
    dataset = toy_dataset()
    model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                    "attention", 24, 32, seed=1)
    train_model(model, dataset, None,
                TrainConfig(epochs=60, batch_size=6, lr=5e-3, patience=60))
    return model, dataset


class TestBeamDecode:
    def test_matches_training_targets(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples)
        beams = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                  dataset.out_vocab.eos_id, beam_width=3)
        hits = sum(
            dataset.out_vocab.decode(ids) == example.tgt_tokens
            for ids, example in zip(beams, dataset.examples)
        )
        assert hits == len(dataset.examples)

    def test_beam1_equals_greedy(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples[:3])
        greedy = model.greedy_decode(batch, dataset.out_vocab.bos_id,
                                     dataset.out_vocab.eos_id, max_len=8)
        beam = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                 dataset.out_vocab.eos_id, beam_width=1,
                                 max_len=8, length_penalty=0.0)
        assert beam == greedy

    def test_respects_max_len(self, trained):
        model, dataset = trained
        batch = dataset.batch_of(dataset.examples[:2])
        beams = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                  dataset.out_vocab.eos_id, beam_width=2,
                                  max_len=3)
        assert all(len(ids) <= 3 for ids in beams)

    def test_works_for_copy_variant(self):
        dataset = toy_dataset()
        model = Seq2Vis(len(dataset.in_vocab), len(dataset.out_vocab),
                        "copy", 16, 24, seed=2)
        batch = dataset.batch_of(dataset.examples[:2])
        beams = model.beam_decode(batch, dataset.out_vocab.bos_id,
                                  dataset.out_vocab.eos_id, beam_width=2,
                                  max_len=5)
        assert len(beams) == 2
