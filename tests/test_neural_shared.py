"""Shared-memory weights: pack/attach round-trips, bit-identical decodes.

The multi-worker pool only works if a model attached from a shared
segment is indistinguishable from the same ``.npz`` loaded in-process —
these tests pin that down token-by-token for greedy and beam decode at
every precision, plus the segment lifecycle (read-only views, the
generation counter, unlink semantics, manifest JSON round-trip).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.neural import Seq2Vis, build_dataset
from repro.neural.persist import save_model
from repro.neural.shared import (
    SEGMENT_PREFIX,
    SharedManifest,
    SharedModel,
    share_model,
    shared_segments_report,
)
from repro.serve import DecodeConfig, NeuralTranslator
from repro.serve.translate import translate_batch

QUESTIONS = [
    "how many rows per category?",
    "show the average price by type",
    "total amount for each name, sorted descending",
    "what is the number of items per year?",
]


@pytest.fixture(scope="module")
def stack(small_nvbench, tmp_path_factory):
    """A saved model archive plus the databases it serves."""
    dataset = build_dataset(small_nvbench.pairs[:60], small_nvbench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention", 16, 24,
        seed=2, dtype="float32",
    )
    path = tmp_path_factory.mktemp("shared") / "model.npz"
    save_model(
        model, dataset.in_vocab, dataset.out_vocab, path
    )
    return path, dataset, small_nvbench.databases


def _decodes(translator, databases, decode):
    requests = [
        (question, databases[name])
        for question, name in zip(QUESTIONS, sorted(databases))
    ]
    results = translate_batch(
        translator.model, translator.in_vocab, translator.out_vocab,
        requests, decode=decode,
    )
    return [(r.tokens, r.error) for r in results]


@pytest.mark.parametrize("precision", ["float32", "float16", "int8"])
@pytest.mark.parametrize(
    "decode",
    [DecodeConfig(), DecodeConfig(beam_width=3, num_candidates=2)],
    ids=["greedy", "beam3"],
)
def test_attached_decodes_bit_identical(stack, precision, decode):
    """npz-loaded vs shared-attached: token-identical at every precision."""
    path, _, databases = stack
    reference = NeuralTranslator.from_npz(str(path), precision=precision)
    shared = share_model(
        reference.model, reference.in_vocab, reference.out_vocab
    )
    try:
        manifest = SharedManifest.from_json(
            json.loads(json.dumps(shared.manifest.to_json()))
        )
        attached = SharedModel.attach(manifest)
        try:
            model, in_vocab, out_vocab = attached.views()
            worker = NeuralTranslator(model, in_vocab, out_vocab)
            assert worker.precision == precision
            assert _decodes(worker, databases, decode) == _decodes(
                reference, databases, decode
            )
        finally:
            attached.close()
    finally:
        shared.destroy()


def test_shared_views_are_read_only(stack):
    path, _, _ = stack
    reference = NeuralTranslator.from_npz(str(path))
    shared = share_model(
        reference.model, reference.in_vocab, reference.out_vocab
    )
    try:
        model, _, _ = SharedModel.attach(shared.manifest).views()
        weight = model.embed_in.weight.data
        assert not weight.flags.writeable
        with pytest.raises(ValueError):
            weight[0, 0] = 1.0
    finally:
        shared.destroy()


def test_generation_counter_is_shared(stack):
    path, _, _ = stack
    reference = NeuralTranslator.from_npz(str(path))
    shared = share_model(
        reference.model, reference.in_vocab, reference.out_vocab
    )
    try:
        attached = SharedModel.attach(shared.manifest)
        assert attached.generation == 1
        shared.set_generation(7)
        # The counter lives in the segment header, so every attachment
        # sees the bump without any message passing.
        assert attached.generation == 7
        attached.close()
    finally:
        shared.destroy()


def test_manifest_round_trip(stack):
    path, _, _ = stack
    reference = NeuralTranslator.from_npz(str(path), precision="int8")
    shared = share_model(
        reference.model, reference.in_vocab, reference.out_vocab
    )
    try:
        payload = json.loads(json.dumps(shared.manifest.to_json()))
        assert SharedManifest.from_json(payload) == shared.manifest
        assert shared.manifest.precision == "int8"
        assert shared.manifest.segment.startswith(SEGMENT_PREFIX)
    finally:
        shared.destroy()


def test_quantization_shrinks_segment(stack):
    path, _, _ = stack
    sizes = {}
    for precision in ("float32", "float16", "int8"):
        translator = NeuralTranslator.from_npz(str(path), precision=precision)
        shared = share_model(
            translator.model, translator.in_vocab, translator.out_vocab
        )
        sizes[precision] = shared.nbytes
        shared.destroy()
    assert sizes["float16"] < sizes["float32"]
    assert sizes["int8"] < sizes["float16"]


def test_destroy_unlinks_segment(stack):
    path, _, _ = stack
    reference = NeuralTranslator.from_npz(str(path))
    shared = share_model(
        reference.model, reference.in_vocab, reference.out_vocab
    )
    segment = shared.manifest.segment
    assert os.path.exists(f"/dev/shm/{segment}")
    shared.destroy()
    assert not os.path.exists(f"/dev/shm/{segment}")
    with pytest.raises(FileNotFoundError):
        SharedModel.attach(shared.manifest)
    # idempotent: a second destroy is a no-op, not an error
    shared.destroy()


def test_segments_report_is_worker_count_independent(stack):
    path, _, _ = stack
    reference = NeuralTranslator.from_npz(str(path))
    shared = share_model(
        reference.model, reference.in_vocab, reference.out_vocab
    )
    try:
        report = shared_segments_report({"attn": shared})
        assert report["shared_bytes"] == shared.nbytes
        attachments = [SharedModel.attach(shared.manifest) for _ in range(4)]
        # Attaching four more times (≈ four workers) changes nothing:
        # the reported resident weight bytes are per segment, not per
        # attachment.
        assert shared_segments_report({"attn": shared}) == report
        for attached in attachments:
            attached.close()
    finally:
        shared.destroy()
