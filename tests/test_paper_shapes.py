"""Fast unit-level checks of the paper's headline shapes.

These duplicate the *assertions* of the benchmark suite at tiny scale so
that `pytest tests/` alone already guards the qualitative claims; the
benchmarks re-verify them at full scale with the real tables printed.
"""

from collections import Counter

import pytest

from repro.core.filter_model import DeepEyeFilter, extract_features
from repro.grammar.ast_nodes import Attribute, Group, QueryCore, VisQuery
from repro.spider.tpc import build_tpcds_database, build_tpch_database


class TestFigure7Shapes:
    """The four TPC filtering demonstrations, as unit tests."""

    @pytest.fixture(scope="class")
    def tpch(self):
        return build_tpch_database()

    @pytest.fixture(scope="class")
    def tpcds(self):
        return build_tpcds_database()

    def _good(self, vis, db):
        features = extract_features(vis, db)
        return features is not None and DeepEyeFilter().score(features) >= 0.5

    def test_supplier_pie_filtered_out(self, tpch):
        vis = VisQuery("pie", QueryCore(
            select=(
                Attribute("s_name", "supplier"),
                Attribute("s_acctbal", "supplier", agg="sum"),
            ),
            groups=(Group("grouping", Attribute("s_name", "supplier")),),
        ))
        assert not self._good(vis, tpch)

    def test_yearly_bar_kept(self, tpch):
        vis = VisQuery("bar", QueryCore(
            select=(
                Attribute("o_orderdate", "orders"),
                Attribute("o_totalprice", "orders", agg="sum"),
            ),
            groups=(
                Group("binning", Attribute("o_orderdate", "orders"), bin_unit="year"),
            ),
        ))
        assert self._good(vis, tpch)

    def test_single_value_bar_filtered_out(self, tpcds):
        vis = VisQuery("bar", QueryCore(
            select=(
                Attribute("ss_quantity", "store_sales", agg="sum"),
                Attribute("ss_net_paid", "store_sales", agg="sum"),
            ),
        ))
        assert not self._good(vis, tpcds)

    def test_quantity_scatter_kept(self, tpcds):
        vis = VisQuery("scatter", QueryCore(
            select=(
                Attribute("ss_quantity", "store_sales"),
                Attribute("ss_net_paid", "store_sales"),
            ),
        ))
        assert self._good(vis, tpcds)


class TestBenchmarkShapes:
    def test_bar_family_dominates(self, small_nvbench):
        counts = small_nvbench.vis_type_counts()
        total = sum(counts.values())
        bars = counts.get("bar", 0) + counts.get("stacked bar", 0)
        assert bars / total > 0.4

    def test_medium_is_most_common_hardness(self, small_nvbench):
        counts = small_nvbench.hardness_counts()
        assert counts["medium"] == max(counts.values())

    def test_multiple_nl_variants_per_vis(self, small_nvbench):
        per_vis = Counter(
            (pair.db_name, pair.vis) for pair in small_nvbench.pairs
        )
        average = sum(per_vis.values()) / len(per_vis)
        assert 1.5 <= average <= 6.0

    def test_back_translation_applied_everywhere(self, small_nvbench):
        """Section 2.5: all NL specifications are smoothed."""
        assert all(pair.back_translated for pair in small_nvbench.pairs)

    def test_synthesized_vis_never_violate_expert_rules(self, small_nvbench):
        """Everything the pipeline kept must at least pass the hard
        expert rules (the trained classifier may disagree with the
        teacher near decision boundaries, but rule rejections — single
        values, overloaded pies/bars — must never get through)."""
        from repro.core.filter_model import rule_verdict

        seen = set()
        for pair in small_nvbench.pairs:
            key = (pair.db_name, pair.vis)
            if key in seen:
                continue
            seen.add(key)
            db = small_nvbench.database_of(pair)
            features = extract_features(pair.vis, db)
            assert features is not None
            assert rule_verdict(features) is not False


class TestManhourShape:
    def test_synthesizer_is_far_cheaper(self, small_nvbench):
        from repro.eval.crowd import HumanStudySimulator

        accounting = HumanStudySimulator().manhour_reduction(small_nvbench.pairs)
        assert accounting["speedup"] > 2.0
        assert 0.0 < accounting["ratio"] < 0.5
