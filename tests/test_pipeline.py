"""Tests for the staged copilot (`repro.pipeline`).

Covers the router's schema-linking ranking, the verifier's
pass/near-miss/fail classification, every repair rule family, the
budget guardrails under an injected fake clock (stage timeouts produce
partial results, row caps truncate, disabled repair reports near-misses
instead of dropping them), and the end-to-end span-per-stage trace
shape on a real run.
"""

from __future__ import annotations

import pytest

from repro.grammar.ast_nodes import Attribute, QueryCore, VisQuery
from repro.grammar.serialize import from_tokens
from repro.obs import InMemoryExporter, Tracer
from repro.pipeline import (
    DECODED,
    FAIL,
    NEAR_MISS,
    PASS,
    REPAIR_PENALTY,
    STAGES,
    Budget,
    BudgetClock,
    Generator,
    Pipeline,
    PipelineCandidate,
    Repairer,
    Router,
    Verifier,
)
from repro.serve import BaselineTranslator
from repro.storage.schema import Column, Database, Table


def _tree(text: str) -> VisQuery:
    return from_tokens(text.split())


def _candidate(text: str, score: float = 0.0) -> PipelineCandidate:
    tokens = text.split()
    return PipelineCandidate(tokens=tokens, score=score, tree=from_tokens(tokens))


@pytest.fixture()
def pets_db() -> Database:
    """A second database whose schema shares nothing with flights."""
    pet = Table("pet", (Column("species", "C"), Column("weight", "Q")))
    pet.extend([("dog", 12.0), ("cat", 4.0), ("dog", 9.0)])
    db = Database(name="pets", domain="pet")
    db.add_table(pet)
    return db


class FakeClock:
    """Deterministic stand-in for ``time.perf_counter`` (seconds)."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class SlowVerifier(Verifier):
    """A verifier that burns fake wall-clock per candidate."""

    def __init__(self, clock: FakeClock, cost_s: float):
        super().__init__()
        self._clock = clock
        self._cost_s = cost_s

    def verify(self, candidate, database):
        self._clock.advance(self._cost_s)
        return super().verify(candidate, database)


class StubGenerator:
    """Generate stage returning fixed candidates (fresh objects per run)."""

    def __init__(self, texts):
        self.texts = list(texts)

    def generate(self, question, database, n):
        return [_candidate(text, score=float(i)) for i, text in enumerate(self.texts)]


class TestBudget:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            Budget(k=0)
        with pytest.raises(ValueError):
            Budget(total_ms=0)
        with pytest.raises(ValueError):
            Budget(stage_ms=-1)
        with pytest.raises(ValueError):
            Budget(max_rows=0)
        with pytest.raises(ValueError):
            Budget(max_executions=0)

    def test_clock_latches_first_exhausted_stage(self):
        clock = FakeClock()
        budget_clock = BudgetClock(Budget(stage_ms=50), clock=clock)
        budget_clock.start_stage("verify")
        assert not budget_clock.exhausted()
        clock.advance(0.06)
        assert budget_clock.exhausted()
        assert budget_clock.timed_out == "verify"
        budget_clock.start_stage("execute")
        clock.advance(0.06)
        assert budget_clock.exhausted()
        assert budget_clock.timed_out == "verify", "first stage stays latched"
        budget_clock.end_stage()
        assert set(budget_clock.stage_timings) == {"verify", "execute"}

    def test_total_budget_counts_across_stages(self):
        clock = FakeClock()
        budget_clock = BudgetClock(Budget(total_ms=100), clock=clock)
        budget_clock.start_stage("route")
        clock.advance(0.07)
        assert not budget_clock.exhausted()
        budget_clock.start_stage("generate")
        clock.advance(0.07)
        assert budget_clock.exhausted()
        assert budget_clock.timed_out == "generate"


class TestRouter:
    def test_ranks_matching_schema_first(self, flight_db, pets_db):
        routes = Router().route(
            "how many flights from each origin?",
            {"pets": pets_db, "flights": flight_db},
        )
        assert [r.db_name for r in routes] == ["flights", "pets"]
        assert routes[0].score > routes[1].score
        assert "flight.origin" in routes[0].matched_columns
        assert "flight" in routes[0].matched_tables

    def test_deterministic_tiebreak_on_name(self, flight_db, pets_db):
        routes = Router().route("hello there", {"pets": pets_db, "flights": flight_db})
        assert routes[0].score == routes[1].score == 0.0
        assert [r.db_name for r in routes] == ["flights", "pets"]

    def test_rank_tables_prefers_mentioned_table(self, flight_db):
        ranked = Router().rank_tables("airline names please", flight_db)
        assert ranked[0] == "airline"


class TestVerifier:
    def test_legal_chart_passes(self, flight_db):
        candidate = _candidate(
            "visualize bar select flight.origin , count ( flight.* )"
            " group grouping flight.origin"
        )
        assert Verifier().verify(candidate, flight_db).status == PASS
        assert candidate.violations == []

    def test_illegal_vis_type_is_near_miss(self, flight_db):
        candidate = _candidate(
            "visualize scatter select flight.origin , count ( flight.* )"
            " group grouping flight.origin"
        )
        Verifier().verify(candidate, flight_db)
        assert candidate.status == NEAR_MISS
        codes = [v.code for v in candidate.violations]
        assert codes == ["illegal-vis-type"]
        assert "bar" in candidate.violations[0].legal_types

    def test_unparsed_candidate_fails_with_parse_error(self, flight_db):
        candidate = PipelineCandidate(
            tokens=["garbage"], score=0.0, error="no parse"
        )
        Verifier().verify(candidate, flight_db)
        assert candidate.status == FAIL
        assert candidate.violations[0].code == "parse-error"
        assert not candidate.violations[0].repairable

    def test_grammar_breakage_fails(self, flight_db):
        # A bar chart carrying three select attributes breaks the
        # grammar's arity rule — built directly since the token parser
        # refuses to produce it.
        bad = VisQuery(
            vis_type="bar",
            body=QueryCore(
                select=(
                    Attribute(column="origin", table="flight"),
                    Attribute(column="price", table="flight"),
                    Attribute(column="destination", table="flight"),
                )
            ),
        )
        candidate = PipelineCandidate(tokens=[], score=0.0, tree=bad)
        Verifier().verify(candidate, flight_db)
        assert candidate.status == FAIL
        assert candidate.violations[0].code == "grammar"

    def test_two_bare_categoricals_fail_unrepairably(self, flight_db):
        candidate = _candidate(
            "visualize bar select flight.origin , flight.destination"
        )
        Verifier().verify(candidate, flight_db)
        assert candidate.status == FAIL
        assert candidate.violations[0].code == "illegal-combination"
        assert not candidate.violations[0].repairable

    def test_unknown_literal_is_near_miss(self, flight_db):
        candidate = _candidate(
            'visualize bar select flight.origin , flight.price'
            ' filter = flight.origin "APX"'
        )
        Verifier().verify(candidate, flight_db)
        assert candidate.status == NEAR_MISS
        assert [v.code for v in candidate.violations] == ["unknown-literal"]


class TestRepairer:
    def test_snaps_illegal_vis_type_to_nearest_legal(self, flight_db):
        candidate = _candidate("visualize scatter select flight.origin , flight.price")
        Verifier().verify(candidate, flight_db)
        assert candidate.status == NEAR_MISS
        fixed = Repairer().repair(candidate, "", flight_db)
        assert fixed is not None
        assert fixed.tree.vis_type == "bar"
        assert fixed.status == PASS
        assert fixed.repaired
        assert fixed.score == candidate.score + REPAIR_PENALTY
        # the original near-miss is untouched
        assert candidate.status == NEAR_MISS and not candidate.repaired

    def test_fuzzy_matches_unknown_literal(self, flight_db):
        candidate = _candidate(
            'visualize bar select flight.origin , flight.price'
            ' filter = flight.origin "APX"'
        )
        Verifier().verify(candidate, flight_db)
        fixed = Repairer().repair(candidate, "", flight_db)
        assert fixed is not None and fixed.status == PASS
        literal = fixed.tree.primary_core.filter.root.value
        assert literal in {"APG", "LAX", "BOS"}
        assert any("literal" in note for note in fixed.repairs)

    def test_bad_aggregate_snaps_to_count_and_conforms(self, flight_db):
        # avg over a categorical column corrupts the signature itself
        # (illegal-combination caused by the aggregate) — repair must
        # fix the aggregate and rebuild the layout.
        candidate = _candidate("visualize bar select flight.origin , avg ( flight.fno )")
        Verifier().verify(candidate, flight_db)
        assert candidate.status == NEAR_MISS
        fixed = Repairer().repair(candidate, "", flight_db)
        assert fixed is not None and fixed.status == PASS
        assert any("-> count" in note for note in fixed.repairs)
        measure = fixed.tree.primary_core.select[1]
        assert measure.agg == "count"

    def test_fixes_bin_unit_for_temporal_column(self, flight_db):
        candidate = _candidate(
            "visualize bar select flight.departure_date , count ( flight.* )"
            " group binning flight.departure_date by numeric"
        )
        Verifier().verify(candidate, flight_db)
        assert [v.code for v in candidate.violations] == ["bin-unit"]
        fixed = Repairer().repair(candidate, "", flight_db)
        assert fixed is not None and fixed.status == PASS
        group = fixed.tree.primary_core.groups[0]
        assert group.bin_unit == "year"

    def test_unrepairable_candidates_return_none(self, flight_db):
        candidate = _candidate("visualize bar select flight.origin , flight.destination")
        Verifier().verify(candidate, flight_db)
        assert Repairer().repair(candidate, "", flight_db) is None
        assert Repairer().repair(
            PipelineCandidate(tokens=[], score=0.0, error="x"), "", flight_db
        ) is None


PASS_BAR = (
    "visualize bar select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)
PASS_PIE = (
    "visualize pie select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)
NEAR_MISS_SCATTER = "visualize scatter select flight.origin , flight.price"


def _pipeline(flight_db, texts, **kwargs):
    kwargs.setdefault("generator", StubGenerator(texts))
    return Pipeline({"flights": flight_db}, **kwargs)


class TestPipelineGuardrails:
    def test_stage_timeout_yields_partial_result(self, flight_db):
        clock = FakeClock()
        pipeline = _pipeline(
            flight_db,
            [PASS_BAR, PASS_PIE, NEAR_MISS_SCATTER],
            budget=Budget(stage_ms=150),
            clock=clock,
            verifier=SlowVerifier(clock, cost_s=0.1),
        )
        result = pipeline.run("flights per origin", "flights")
        assert result.timed_out == "verify"
        assert result.partial
        # two candidates verified before the deadline; the third is
        # reported still-decoded, not dropped
        statuses = [c.status for c in result.candidates]
        assert statuses.count(DECODED) == 1
        assert result.counters["verify_pass"] == 2
        assert set(result.stage_timings) == set(STAGES)
        assert result.stage_timings["verify"] >= 200.0

    def test_row_cap_truncates_execution(self, flight_db):
        pipeline = _pipeline(
            flight_db, [PASS_BAR], budget=Budget(max_rows=2)
        )
        result = pipeline.run("flights per origin", "flights")
        execution = result.candidates[0].execution
        assert execution.truncated
        assert execution.rows == 2
        assert result.counters["execution_truncations"] == 1
        assert result.candidates[0].valid, "truncated is still servable"

    def test_max_executions_skips_the_rest(self, flight_db):
        pipeline = _pipeline(
            flight_db, [PASS_BAR, PASS_PIE], budget=Budget(max_executions=1)
        )
        result = pipeline.run("flights per origin", "flights")
        assert result.counters["executions"] == 1
        assert result.counters["execution_skips"] == 1
        skipped = [
            c for c in result.candidates
            if c.execution is not None and c.execution.skipped
        ]
        assert len(skipped) == 1 and not skipped[0].valid

    def test_repair_disabled_reports_near_misses(self, flight_db):
        pipeline = _pipeline(
            flight_db, [PASS_BAR, NEAR_MISS_SCATTER], budget=Budget(repair=False)
        )
        result = pipeline.run("flights per origin", "flights")
        assert result.counters["repairs_attempted"] == 0
        near_misses = [c for c in result.candidates if c.status == NEAR_MISS]
        assert len(near_misses) == 1
        assert near_misses[0].violations, "verdict travels with the candidate"
        assert not any(c.repaired for c in result.candidates)

    def test_repair_enabled_appends_fixed_candidate(self, flight_db):
        pipeline = _pipeline(flight_db, [NEAR_MISS_SCATTER])
        result = pipeline.run("flights per origin", "flights")
        assert result.counters["repairs_attempted"] == 1
        assert result.counters["repairs_succeeded"] == 1
        repaired = [c for c in result.candidates if c.repaired]
        assert len(repaired) == 1
        assert repaired[0].valid, "repaired candidate executed within budget"
        # both the fix and the original near-miss are reported
        assert any(c.status == NEAR_MISS and not c.repaired for c in result.candidates)

    def test_repaired_total_distinguishes_born_legal(self, flight_db):
        pipeline = _pipeline(flight_db, [PASS_BAR, NEAR_MISS_SCATTER])
        result = pipeline.run("flights per origin", "flights")
        assert result.counters["repaired_total"] == 1
        assert result.counters["born_legal_total"] == 1

    def test_repaired_total_zero_without_repairs(self, flight_db):
        pipeline = _pipeline(flight_db, [PASS_BAR, PASS_PIE])
        result = pipeline.run("flights per origin", "flights")
        assert result.counters["repaired_total"] == 0
        assert result.counters["born_legal_total"] == 2

    def test_unknown_database_raises(self, flight_db):
        pipeline = _pipeline(flight_db, [PASS_BAR])
        with pytest.raises(KeyError):
            pipeline.run("anything", "nope")


class TestPipelineEndToEnd:
    def test_one_span_per_stage(self, flight_db, pets_db):
        exporter = InMemoryExporter()
        pipeline = Pipeline(
            {"flights": flight_db, "pets": pets_db},
            StubGenerator([PASS_BAR, PASS_PIE]),
            tracer=Tracer(exporter=exporter),
        )
        result = pipeline.run("how many flights from each origin?")
        names = [record["name"] for record in exporter.records()]
        for stage in STAGES:
            assert names.count(stage) == 1, names
        assert names.count("pipeline") == 1
        root = [r for r in exporter.records() if r["name"] == "pipeline"][0]
        assert result.trace_id == root["trace_id"]
        assert all(
            record["trace_id"] == root["trace_id"] for record in exporter.records()
        )

    def test_routes_to_matching_database(self, flight_db, pets_db):
        pipeline = Pipeline(
            {"flights": flight_db, "pets": pets_db},
            StubGenerator([PASS_BAR]),
        )
        result = pipeline.run("how many flights from each origin?")
        assert result.routed
        assert result.db_name == "flights"
        assert [r.db_name for r in result.routes][0] == "flights"

    def test_ambiguous_question_yields_distinct_charts(self, flight_db):
        pipeline = _pipeline(flight_db, [PASS_BAR, PASS_PIE, PASS_BAR])
        result = pipeline.run("flights per origin", "flights")
        assert result.ambiguous
        charts = result.charts
        assert len(charts) == 2, "duplicate bar collapsed"
        assert len({c.vis_text for c in charts}) == 2
        assert all(c.valid for c in charts)

    def test_counters_reach_metrics_sink(self, flight_db):
        class Sink:
            def __init__(self):
                self.seen = {}

            def count(self, name, amount=1):
                self.seen[name] = self.seen.get(name, 0) + amount

        sink = Sink()
        pipeline = _pipeline(flight_db, [PASS_BAR, NEAR_MISS_SCATTER], metrics=sink)
        pipeline.run("flights per origin", "flights")
        assert sink.seen["pipeline_verify_pass"] == 1
        assert sink.seen["pipeline_verify_near_miss"] == 1
        assert sink.seen["pipeline_repairs_succeeded"] == 1
        assert "pipeline_verify_fail" not in sink.seen, "zero counters not emitted"

    def test_deepeye_generator_end_to_end(self, flight_db):
        pipeline = Pipeline(
            {"flights": flight_db},
            Generator(BaselineTranslator.from_name("deepeye")),
            budget=Budget(k=3),
        )
        result = pipeline.run("how many flights per origin?", "flights")
        assert result.charts, "baseline should produce at least one valid chart"
        assert result.counters["executions"] >= 1
        payload = result.to_json()
        assert payload["db"] == "flights"
        assert payload["candidates"]
        assert payload["timed_out"] is None
