"""Multi-process serving: worker pool, crash recovery, rolling hot-swap.

Everything here runs real forked processes over real sockets.  The
invariants: pool outputs are bit-identical to in-process decode, weights
are resident once (shared segments) no matter the worker count, a
SIGKILLed worker never loses a request, a rolling swap never serves
stale cache entries, and shutdown leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.neural import Seq2Vis, build_dataset
from repro.obs import JsonlExporter, Tracer, load_spans, span_tree, summarize
from repro.serve import (
    BackgroundServer,
    DecodeConfig,
    LoadGenerator,
    PoolConfig,
    ServerConfig,
    WorkerPool,
)
from repro.serve.translate import translate_batch

QUESTIONS = [
    "how many rows per category?",
    "show the average price by type",
    "total amount for each name, sorted descending",
    "plot a pie of counts per status",
    "what is the number of items per year?",
    "compare the minimum score across groups",
]


def _shm_segments() -> set:
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith("repro-weights-")
    }


def _worker_config() -> ServerConfig:
    return ServerConfig(max_batch_size=4, flush_interval=0.01)


@pytest.fixture(scope="module")
def stack(small_nvbench):
    dataset = build_dataset(small_nvbench.pairs[:60], small_nvbench.databases)
    model = Seq2Vis(
        len(dataset.in_vocab), len(dataset.out_vocab), "attention", 16, 24,
        seed=2, dtype="float32",
    )
    return model, dataset, small_nvbench.databases


def _reference_tokens(model, dataset, databases, decode=None):
    requests = [
        (question, databases[name])
        for question, name in zip(QUESTIONS, sorted(databases))
    ]
    results = translate_batch(
        model, dataset.in_vocab, dataset.out_vocab, requests,
        decode=decode,
    )
    return [r.tokens for r in results]


def _pool(stack, workers=2, **overrides) -> WorkerPool:
    model, dataset, databases = stack
    config = PoolConfig(workers=workers, worker=_worker_config(), **overrides)
    pool = WorkerPool(databases, config)
    pool.share_model(
        "attn", model, dataset.in_vocab, dataset.out_vocab, default=True
    )
    return pool


@pytest.fixture(scope="module")
def running(stack):
    """One shared 2-worker pool for the read-mostly tests."""
    pool = _pool(stack)
    with BackgroundServer(pool) as background:
        yield pool, background.client()


class TestPoolServing:
    def test_outputs_bit_identical_to_in_process(self, running, stack):
        model, dataset, databases = stack
        _, client = running
        expected = _reference_tokens(model, dataset, databases)
        for (question, db_name), tokens in zip(
            zip(QUESTIONS, sorted(databases)), expected
        ):
            response = client.translate(question, db_name, use_cache=False)
            assert response["tokens"] == tokens

    def test_beam_outputs_bit_identical(self, running, stack):
        model, dataset, databases = stack
        _, client = running
        decode = DecodeConfig(beam_width=3, num_candidates=2)
        expected = _reference_tokens(model, dataset, databases, decode=decode)
        for (question, db_name), tokens in zip(
            zip(QUESTIONS, sorted(databases)), expected
        ):
            response = client.translate(
                question, db_name, use_cache=False, beam_width=3, candidates=2
            )
            assert response["tokens"] == tokens

    def test_healthz_reports_per_worker_liveness(self, running):
        _, client = running
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["worker_count"] == 2 and doc["ready_workers"] == 2
        for entry in doc["workers"]:
            assert entry["alive"] is True
            assert entry["state"] == "ready"
            assert isinstance(entry["queue_depth"], int)
            assert entry["weights"]["attn"]["generation"] >= 1
        # client.workers() is the sweep-harness view of the same data
        assert [w["worker_id"] for w in client.workers()] == [0, 1]

    def test_weights_resident_once_not_per_worker(self, running):
        pool, client = running
        doc = client.healthz()
        segment_bytes = doc["weights"]["shared_bytes"]
        assert segment_bytes > 0
        # every worker reports the same segment, not a private copy
        segments = {
            entry["weights"]["attn"]["segment"] for entry in doc["workers"]
        }
        assert len(segments) == 1
        assert pool._shared["attn"].nbytes == segment_bytes

    def test_metrics_aggregates_across_workers(self, running, stack):
        _, _, databases = stack
        _, client = running
        db_name = sorted(databases)[0]
        for question in QUESTIONS:
            client.translate(question, db_name, use_cache=False)
        doc = client.metrics()
        assert set(doc["workers"]) == {"0", "1"}
        aggregate = doc["aggregate"]
        per_worker_total = sum(
            w.get("counters", {}).get("requests_total", 0)
            for w in doc["workers"].values()
        )
        assert aggregate["counters"]["requests_total"] == per_worker_total
        assert aggregate["latency_ms"]["count"] == per_worker_total
        assert doc["front"]["counters"]["requests_total"] >= len(QUESTIONS)
        assert doc["weights"]["shared_bytes"] > 0

    def test_front_404_and_405_pass_through(self, running):
        _, client = running
        status, body = client.request("GET", "/nope")
        assert status == 404 and "error" in body
        status, _ = client.request("GET", "/translate")
        assert status == 405

    def test_worker_error_statuses_not_retried(self, running):
        _, client = running
        status, body = client.request(
            "POST", "/translate", {"question": "hi", "db": "missing-db"}
        )
        assert status == 404
        assert "unknown database" in body["error"]


class TestCrashRecovery:
    def test_killed_worker_requests_requeued_and_answered(self, stack):
        _, dataset, databases = stack
        pool = _pool(stack)
        with BackgroundServer(pool) as background:
            client = background.client()
            db_name = sorted(databases)[0]
            victim = client.healthz()["workers"][0]["pid"]
            requests = [
                {"question": q, "db": db_name, "use_cache": False}
                for q in QUESTIONS * 5
            ]
            generator = LoadGenerator(client, concurrency=4)
            outcome = {}

            def fire():
                outcome["report"], outcome["responses"] = generator.run(
                    requests
                )

            thread = threading.Thread(target=fire)
            thread.start()
            time.sleep(0.05)  # load in flight
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()
            report = outcome["report"]
            # every request answered: crash-hit ones were re-queued onto
            # the surviving worker, none dropped or errored
            assert report.errors == 0
            assert all(r is not None for r in outcome["responses"])
            deadline = time.time() + 30
            while time.time() < deadline:
                doc = client.healthz()
                if doc["ready_workers"] == 2:
                    break
                time.sleep(0.2)
            assert doc["ready_workers"] == 2
            assert any(w["restarts"] >= 1 for w in doc["workers"])
            # the respawned worker serves correctly
            response = client.translate(
                QUESTIONS[0], db_name, use_cache=False
            )
            assert response["tokens"] is not None or "error" in response


class TestRollingHotSwap:
    def test_swap_under_load_zero_failures_no_stale_cache(self, stack):
        model, dataset, databases = stack
        pool = _pool(stack)
        new_model = Seq2Vis(
            len(dataset.in_vocab), len(dataset.out_vocab), "attention",
            16, 24, seed=9, dtype="float32",
        )
        with BackgroundServer(pool) as background:
            client = background.client()
            db_name = sorted(databases)[0]
            # prime the response caches on both workers pre-swap
            for _ in range(4):
                primed = client.translate(
                    QUESTIONS[0], db_name, use_cache=True
                )
            requests = [
                {"question": q, "db": db_name, "use_cache": False}
                for q in QUESTIONS * 4
            ]
            generator = LoadGenerator(client, concurrency=4)
            outcome = {}

            def fire():
                outcome["report"], _ = generator.run(requests)

            thread = threading.Thread(target=fire)
            thread.start()
            time.sleep(0.05)
            result = pool.swap_model(
                "attn", new_model, dataset.in_vocab, dataset.out_vocab,
                default=True,
            )
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert outcome["report"].errors == 0, outcome["report"].by_status
            assert result["generation"] == 2
            assert len(result["workers"]) == 2

            # a post-swap request must reflect the new weights even
            # though the same (question, db) was cached pre-swap
            expected = _reference_tokens(new_model, dataset, databases)[0]
            response = client.translate(QUESTIONS[0], db_name, use_cache=True)
            assert response["cached"] is False
            assert response["tokens"] == expected
            # generation is visible everywhere
            doc = client.healthz()
            assert doc["generation"] == 2
            for entry in doc["workers"]:
                assert entry["weights"]["attn"]["generation"] == 2
            # old segment is gone, exactly one segment remains
            assert len(doc["weights"]["segments"]) == 1


class TestLifecycle:
    def test_shutdown_leaves_no_shared_segments(self, stack):
        before = _shm_segments()
        pool = _pool(stack)
        with BackgroundServer(pool) as background:
            client = background.client()
            during = _shm_segments() - before
            assert during, "pool should hold at least one segment while up"
            client.healthz()
        assert _shm_segments() - before == set()

    def test_single_worker_pool_serves(self, stack):
        _, dataset, databases = stack
        pool = _pool(stack, workers=1)
        with BackgroundServer(pool) as background:
            client = background.client()
            doc = client.healthz()
            assert doc["worker_count"] == 1
            response = client.translate(
                QUESTIONS[0], sorted(databases)[0], use_cache=False
            )
            assert "tokens" in response


class TestCrossProcessTracing:
    def test_front_and_worker_spans_stitch_from_directory(
        self, stack, tmp_path
    ):
        _, dataset, databases = stack
        trace_dir = tmp_path / "traces"
        pool = _pool(stack, trace_dir=str(trace_dir))
        exporter = JsonlExporter(trace_dir / "front.jsonl")
        pool.tracer = Tracer(exporter=exporter)
        with BackgroundServer(pool) as background:
            client = background.client()
            db_name = sorted(databases)[0]
            response = client.translate(
                QUESTIONS[0], db_name, use_cache=False
            )
            trace_id = response["trace_id"]
        exporter.close()

        records = load_spans(str(trace_dir))  # directory, not a file
        files = {f.name for f in trace_dir.glob("*.jsonl")}
        assert "front.jsonl" in files
        assert any(name.startswith("worker-") for name in files)

        tree = span_tree([r for r in records if r["trace_id"] == trace_id])
        roots = tree[trace_id]
        # one stitched tree: front.request at the root, the worker's
        # http.request (from its own JSONL file) nested beneath it
        assert [root.name for root in roots] == ["front.request"]
        child_names = {child.name for child in roots[0].children}
        assert "http.request" in child_names

        rendered = summarize(records, trace_id=trace_id)
        assert "front.request" in rendered
        assert "http.request" in rendered
