"""Smoke tests: the runnable examples must work end to end.

The training example is excluded here (it takes minutes); its machinery
is covered by tests/test_eval_harness.py.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "synthesized vis #1" in out
        assert "Vega-Lite spec" in out
        assert "visualize" in out

    def test_custom_database(self):
        out = run_example("custom_database.py")
        assert "pass the filter" in out
        assert "kept chart #1" in out
        assert "echarts" in out

    @pytest.mark.slow
    def test_build_benchmark(self):
        out = run_example("build_benchmark.py")
        assert "databases:" in out
        assert "saved + reloaded" in out
