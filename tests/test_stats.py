"""Tests for the dataset statistics package (Table 2, Figures 8-9)."""

import numpy as np
import pytest

from repro.stats.dataset_stats import (
    column_count_histogram,
    dataset_summary,
    row_count_histogram,
)
from repro.stats.distributions import (
    corpus_distribution_profile,
    fit_distribution,
    outlier_fraction,
    skewness_class,
)
from repro.stats.nl_stats import nl_vis_table

def _rng(seed: int = 0) -> np.random.Generator:
    """Per-test generators keep tests order-independent."""
    return np.random.default_rng(seed)


class TestDatasetSummary:
    def test_counts_consistent(self, small_corpus):
        summary = dataset_summary(small_corpus)
        assert summary.n_databases == len(small_corpus.databases)
        assert summary.n_tables == small_corpus.total_tables
        assert summary.min_columns <= summary.avg_columns <= summary.max_columns
        assert summary.min_rows <= summary.avg_rows <= summary.max_rows

    def test_column_type_fractions_sum_to_one(self, small_corpus):
        fractions = dataset_summary(small_corpus).column_type_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        # Categorical columns dominate, as in the paper (68.78% C).
        assert fractions["C"] > fractions["T"]

    def test_top_domains_ordered(self, small_corpus):
        top = dataset_summary(small_corpus).top_domains
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_histograms_cover_every_table(self, small_corpus):
        columns = column_count_histogram(small_corpus)
        rows = row_count_histogram(small_corpus)
        assert sum(columns.values()) == small_corpus.total_tables
        assert sum(rows.values()) == small_corpus.total_tables


class TestDistributionFitting:
    def test_normal_detected(self):
        # A normal far from zero is indistinguishable from a low-sigma
        # lognormal; either family is a correct call.
        values = _rng(1).normal(50, 5, size=400).tolist()
        assert fit_distribution(values) in ("normal", "lognormal")
        centered = _rng(2).normal(0, 5, size=400).tolist()
        assert fit_distribution(centered) == "normal"

    def test_lognormal_detected(self):
        values = _rng(3).lognormal(3, 0.6, size=400).tolist()
        assert fit_distribution(values) == "lognormal"

    def test_exponential_detected(self):
        values = _rng(4).exponential(10, size=400).tolist()
        assert fit_distribution(values) in ("exponential", "lognormal", "powerlaw")

    def test_uniform_detected(self):
        values = _rng(5).uniform(0, 100, size=400).tolist()
        assert fit_distribution(values) == "uniform"

    def test_bimodal_fits_nothing(self):
        gen = _rng(6)
        values = np.concatenate(
            [gen.normal(5, 0.5, 300), gen.normal(60, 0.5, 300)]
        ).tolist()
        assert fit_distribution(values) is None

    def test_too_few_samples(self):
        assert fit_distribution([1.0, 2.0]) is None

    def test_constant_column(self):
        assert fit_distribution([5.0] * 50) is None


class TestSkewAndOutliers:
    def test_symmetric(self):
        assert skewness_class(_rng(7).normal(0, 1, 500).tolist()) == "symmetric"

    def test_highly_skewed(self):
        assert skewness_class(_rng(8).lognormal(0, 1.2, 500).tolist()) == "high"

    def test_outlier_free(self):
        assert outlier_fraction(list(np.linspace(0, 1, 100))) == 0.0

    def test_outliers_detected(self):
        values = _rng(9).normal(0, 1, 200).tolist() + [50.0, -50.0]
        fraction = outlier_fraction(values)
        assert fraction is not None and fraction > 0

    def test_profile_covers_all_q_columns(self, small_corpus):
        profile = corpus_distribution_profile(small_corpus)
        assert sum(profile["fits"].values()) > 0
        assert set(profile["fits"]) <= {
            "normal", "lognormal", "exponential", "powerlaw",
            "uniform", "chi2", "none",
        }
        assert set(profile["skewness"]) <= {"symmetric", "moderate", "high"}


class TestNLStats:
    def test_table3_rows(self, small_nvbench):
        rows = nl_vis_table(small_nvbench)
        assert rows[-1].vis_type == "all"
        all_row = rows[-1]
        assert all_row.n_pairs == len(small_nvbench.pairs)
        assert all_row.n_vis == len(small_nvbench.distinct_vis)
        per_type_pairs = sum(row.n_pairs for row in rows[:-1])
        assert per_type_pairs == all_row.n_pairs

    def test_bleu_indicates_diversity(self, small_nvbench):
        all_row = nl_vis_table(small_nvbench)[-1]
        # Variants of one vis share the source question, so BLEU is
        # mid-range — but far from 1.0 (identical) as in the paper.
        assert 0.05 < all_row.avg_bleu < 0.8

    def test_word_counts_positive(self, small_nvbench):
        for row in nl_vis_table(small_nvbench):
            assert row.min_words > 0
            assert row.min_words <= row.avg_words <= row.max_words
