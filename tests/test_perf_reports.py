"""Edge cases for :class:`repro.perf.Histogram` and the profiler JSON
report schemas.

The histogram backs every latency/batch-size metric surface and the
profiler reports are the on-disk contract of ``--profile`` and the
``BENCH_*.json`` trajectories — their shapes are asserted here so a
refactor cannot silently change what downstream tooling parses.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import BuildProfiler, Histogram, TrainProfiler


class TestHistogramEdgeCases:
    def test_empty_histogram(self):
        hist = Histogram((1.0, 10.0))
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.min is None
        assert hist.max is None
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert all(count == 0 for count in summary["buckets"].values())

    def test_single_observation(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(3.5)
        assert hist.count == 1
        assert hist.mean == 3.5
        assert hist.min == hist.max == 3.5
        # every percentile of a single sample is that sample
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == 3.5
        assert hist.buckets() == {"le_1": 0, "le_10": 1, "le_inf": 0}

    def test_out_of_range_lands_in_overflow_bucket(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(10.0)        # boundary: <= bound is inclusive
        hist.observe(10.0001)     # just past the last bound
        hist.observe(1e9)         # far out of range
        assert hist.buckets() == {"le_1": 0, "le_10": 1, "le_inf": 2}
        assert hist.max == 1e9

    def test_negative_and_zero_land_in_first_bucket(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(0.0)
        hist.observe(-5.0)
        assert hist.buckets()["le_1"] == 2
        assert hist.min == -5.0

    def test_window_bounds_percentiles_not_totals(self):
        hist = Histogram((100.0,), window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            hist.observe(value)
        # totals see everything...
        assert hist.count == 6
        assert hist.mean == pytest.approx(3.5)
        assert hist.min == 1.0
        # ...percentiles only the retained window (3, 4, 5, 6)
        assert hist.percentile(0) == 3.0
        assert hist.percentile(100) == 6.0

    def test_fractional_bucket_labels(self):
        hist = Histogram((0.5, 2.5))
        assert list(hist.buckets()) == ["le_0.5", "le_2.5", "le_inf"]


class TestBuildProfilerReportSchema:
    def test_report_shape(self):
        profiler = BuildProfiler()
        with profiler.stage("synthesize"):
            pass
        profiler.count("execution_cache_hits", 3)
        report = profiler.report()
        assert set(report) == {"total_seconds", "stages", "counters"}
        assert set(report["stages"]["synthesize"]) == {"calls", "seconds"}
        assert report["stages"]["synthesize"]["calls"] == 1
        assert report["counters"] == {"execution_cache_hits": 3}
        assert report["total_seconds"] >= 0.0

    def test_write_json_round_trips(self, tmp_path):
        profiler = BuildProfiler()
        with profiler.stage("featurize"):
            pass
        path = tmp_path / "profile.json"
        written = profiler.write_json(str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(written))

    def test_stages_and_counters_are_sorted(self):
        profiler = BuildProfiler()
        for name in ("zeta", "alpha", "midway"):
            profiler.record(name, 0.01)
            profiler.count(name)
        report = profiler.report()
        assert list(report["stages"]) == ["alpha", "midway", "zeta"]
        assert list(report["counters"]) == ["alpha", "midway", "zeta"]


class TestTrainProfilerReportSchema:
    def test_report_shape(self):
        profiler = TrainProfiler()
        profiler.observe_step(0.01, 100)
        profiler.observe_step(0.01, 120)
        profiler.observe_epoch(0, 0.02, 220, 2, 1.5, 1.2)
        report = profiler.report()
        assert set(report) == {
            "tokens", "steps", "train_seconds", "tokens_per_sec",
            "step_ms", "epochs",
        }
        assert report["tokens"] == 220
        assert report["steps"] == 2
        assert report["step_ms"]["count"] == 2
        (epoch,) = report["epochs"]
        assert set(epoch) == {
            "epoch", "seconds", "tokens", "steps", "tokens_per_sec",
            "train_loss", "val_loss",
        }
        assert epoch["val_loss"] == 1.2

    def test_report_is_json_serializable(self, tmp_path):
        profiler = TrainProfiler()
        profiler.observe_step(0.005, 64)
        profiler.observe_epoch(0, 0.005, 64, 1, 2.0, None)
        path = tmp_path / "train.json"
        profiler.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["epochs"][0]["val_loss"] is None
        assert loaded["tokens_per_sec"] > 0.0

    def test_empty_profiler_reports_zeros(self):
        report = TrainProfiler().report()
        assert report["tokens"] == 0
        assert report["steps"] == 0
        assert report["tokens_per_sec"] == 0.0
        assert report["epochs"] == []
