"""Tests for the ``repro.obs`` observability layer.

Covers the span/tracer core (ambient + explicit parenting, error
status, post-hoc records, cross-process absorption), the JSONL
exporter round trip, the ``trace summarize`` rendering, and the three
instrumented hot paths: the (parallel) benchmark build, the training
loop, and the inference server — including the acceptance guarantees
that tracing never changes outputs and that one trace id follows a
request from HTTP ingress through micro-batch coalescing into the
batched decode.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.nvbench import NVBenchConfig, build_nvbench, save_nvbench_pairs
from repro.obs import (
    NOOP_SPAN,
    InMemoryExporter,
    JsonlExporter,
    SpanContext,
    Tracer,
    load_spans,
    make_exporter,
    render_tree,
    span_tree,
    stage_table,
    summarize,
    traced,
)
from repro.spider.corpus import CorpusConfig, build_spider_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_spider_corpus(
        CorpusConfig(num_databases=3, pairs_per_database=4, row_scale=0.3, seed=3)
    )


def _config() -> NVBenchConfig:
    return NVBenchConfig(filter_training_pairs=12, seed=3)


def _by_name(records, name):
    return [r for r in records if r["name"] == name]


class TestSpanCore:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", answer=42) as span:
            span.set_attribute("extra", "yes")
            span.add_event("milestone", step=1)
        (record,) = tracer.finished()
        assert record["name"] == "work"
        assert record["status"] == "ok"
        assert record["duration_ms"] >= 0.0
        assert record["attributes"] == {"answer": 42, "extra": "yes"}
        assert record["events"][0]["name"] == "milestone"
        assert record["events"][0]["offset_ms"] >= 0.0

    def test_ambient_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished()  # inner ends first
        assert inner["name"] == "inner"
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_explicit_parent_crosses_serialization(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        payload = root.context.to_dict()
        root.end()
        assert SpanContext.from_dict(payload) == root.context
        with tracer.span("child", parent=payload):
            pass
        child = tracer.finished()[-1]
        assert child["trace_id"] == root.trace_id
        assert child["parent_id"] == root.span_id

    def test_empty_span_id_roots_in_existing_trace(self):
        # An inbound bare trace id (x-trace-id header) adopts the trace
        # without inventing a parent span.
        tracer = Tracer()
        context = SpanContext(trace_id="beefbeefbeefbeef", span_id="")
        with tracer.span("request", parent=context):
            pass
        (record,) = tracer.finished()
        assert record["trace_id"] == "beefbeefbeefbeef"
        assert record["parent_id"] is None

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.finished()
        assert record["status"] == "error"
        assert record["error"] == "ValueError: nope"

    def test_record_post_hoc(self):
        tracer = Tracer()
        parent = SpanContext(trace_id="cafecafecafecafe", span_id="1234")
        tracer.record(
            "decode", parent=parent, start_unix=100.0, duration_s=0.25,
            batch_size=4,
        )
        (record,) = tracer.finished()
        assert record["trace_id"] == "cafecafecafecafe"
        assert record["parent_id"] == "1234"
        assert record["start_unix"] == 100.0
        assert record["duration_ms"] == 250.0
        assert record["attributes"]["batch_size"] == 4

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("ignored")
        assert span is NOOP_SPAN
        assert span.set_attribute("k", "v") is span
        assert span.context is None
        with traced(tracer, "also-ignored") as inner:
            assert inner is NOOP_SPAN
        assert tracer.finished() == []
        assert tracer.current_context() is None
        assert tracer.stats() == {
            "enabled": False, "spans_started": 0, "spans_finished": 0,
        }

    def test_traced_tolerates_none(self):
        with traced(None, "nothing", key="value") as span:
            assert span is NOOP_SPAN

    def test_absorb_merges_in_order(self):
        worker = Tracer()
        with worker.span("shard"):
            pass
        coordinator = Tracer()
        assert coordinator.absorb(worker.finished()) == 1
        assert [r["name"] for r in coordinator.finished()] == ["shard"]
        assert coordinator.stats()["spans_finished"] == 1

    def test_stats_counts_started_and_finished(self):
        tracer = Tracer()
        open_span = tracer.start_span("open")
        with tracer.span("closed"):
            pass
        stats = tracer.stats()
        assert stats["spans_started"] == 2
        assert stats["spans_finished"] == 1
        open_span.end()
        assert tracer.stats()["spans_finished"] == 2


class TestExporters:
    def test_in_memory_exporter_receives_finished_spans(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("work"):
            pass
        assert [r["name"] for r in exporter.records()] == ["work"]
        assert tracer.finished() == []  # not buffered when exporting

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"
        exporter = JsonlExporter(str(path))
        tracer = Tracer(exporter=exporter)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        exporter.close()
        assert exporter.exported == 2
        records = load_spans(str(path))
        assert [r["name"] for r in records] == ["inner", "outer"]
        for record in records:
            assert set(record) == {
                "trace_id", "span_id", "parent_id", "name", "start_unix",
                "duration_ms", "status", "error", "attributes", "events",
            }

    def test_jsonl_close_is_idempotent_and_final(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlExporter(str(path))
        exporter.export({"name": "kept"})
        exporter.close()
        exporter.close()
        exporter.export({"name": "dropped"})
        assert exporter.exported == 1
        assert len(load_spans(str(path))) == 1

    def test_load_spans_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok"}\n\nnot json\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:3"):
            load_spans(str(path))

    def test_make_exporter(self, tmp_path):
        assert make_exporter(None) is None
        assert make_exporter("") is None
        exporter = make_exporter(str(tmp_path / "t.jsonl"))
        assert isinstance(exporter, JsonlExporter)
        exporter.close()


def _fake_record(name, trace="t1", span_id="s", parent=None, ms=1.0,
                 status="ok", start=0.0):
    return {
        "trace_id": trace, "span_id": span_id, "parent_id": parent,
        "name": name, "start_unix": start, "duration_ms": ms,
        "status": status, "error": "X: y" if status == "error" else None,
        "attributes": {}, "events": [],
    }


class TestSummarize:
    def _records(self):
        return [
            _fake_record("build", span_id="root", ms=100.0),
            _fake_record("pair", span_id="p1", parent="root", ms=10.0, start=1),
            _fake_record("pair", span_id="p2", parent="root", ms=20.0, start=2),
            _fake_record("pair", span_id="p3", parent="root", ms=30.0, start=3,
                         status="error"),
            _fake_record("featurize", span_id="f1", parent="p1", ms=5.0),
        ]

    def test_span_tree_resolves_parents_and_orphans(self):
        records = self._records() + [
            _fake_record("orphan", span_id="o1", parent="missing", ms=1.0)
        ]
        roots = span_tree(records)
        assert set(roots) == {"t1"}
        names = sorted(node.name for node in roots["t1"])
        assert names == ["build", "orphan"]
        build = next(n for n in roots["t1"] if n.name == "build")
        assert [child.name for child in build.children] == ["pair"] * 3

    def test_render_tree_collapses_siblings_and_marks_errors(self):
        roots = span_tree(self._records())["t1"]
        text = render_tree(roots)
        assert "build" in text
        assert "pair ×3" in text
        assert "[1 error]" in text
        assert "featurize" in text

    def test_render_tree_min_ms_and_max_depth(self):
        roots = span_tree(self._records())["t1"]
        assert "featurize" not in render_tree(roots, max_depth=2)
        text = render_tree(roots, min_ms=25.0)
        assert "build" in text
        assert "pair ×3" in text
        assert "featurize" not in text
        # an errored group survives the min_ms filter at its own level
        err_roots = span_tree(
            [_fake_record("bad", ms=0.1, status="error")]
        )["t1"]
        assert "bad" in render_tree(err_roots, min_ms=1000.0)

    def test_stage_table_sorted_by_total(self):
        rows = stage_table(self._records())
        assert [row["name"] for row in rows] == ["build", "pair", "featurize"]
        pair = rows[1]
        assert pair["calls"] == 3
        assert pair["total_ms"] == 60.0
        assert pair["mean_ms"] == 20.0
        assert pair["max_ms"] == 30.0
        assert pair["errors"] == 1

    def test_summarize_document(self):
        text = summarize(self._records())
        assert "trace t1 (5 spans)" in text
        assert "stage breakdown (5 spans, 1 trace(s))" in text

    def test_summarize_trace_id_filter(self):
        text = summarize(self._records(), trace_id="nope")
        assert "not in export" in text
        assert summarize([]) == "(no spans in export)"

    def test_summarize_caps_trace_count(self):
        records = [
            _fake_record("r", trace=f"t{i}", span_id=f"s{i}", ms=i)
            for i in range(8)
        ]
        text = summarize(records, max_traces=2)
        assert "6 more trace(s) omitted" in text


class TestBuildTracing:
    def test_traced_parallel_build_is_byte_identical(self, tiny_corpus, tmp_path):
        plain = build_nvbench(corpus=tiny_corpus, config=_config(), workers=2)
        tracer = Tracer()
        traced_build = build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=2, tracer=tracer
        )
        assert traced_build.pairs == plain.pairs
        save_nvbench_pairs(plain, str(tmp_path / "plain.json"))
        save_nvbench_pairs(traced_build, str(tmp_path / "traced.json"))
        assert (tmp_path / "plain.json").read_bytes() == \
            (tmp_path / "traced.json").read_bytes()

    def test_parallel_build_spans_share_one_trace(self, tiny_corpus):
        tracer = Tracer()
        build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=2, tracer=tracer
        )
        records = tracer.finished()
        (root,) = _by_name(records, "build_nvbench")
        assert root["parent_id"] is None
        assert {r["trace_id"] for r in records} == {root["trace_id"]}
        # one shard span per database — the shard is the unit of work
        shards = _by_name(records, "shard")
        assert len(shards) == len(tiny_corpus.databases)
        assert {s["attributes"]["db"] for s in shards} == set(
            tiny_corpus.databases
        )
        (synth,) = _by_name(records, "synthesize")
        for shard in shards:
            assert shard["parent_id"] == synth["span_id"]
        pairs = _by_name(records, "pair")
        assert len(pairs) == len(tiny_corpus.pairs)
        shard_ids = {shard["span_id"] for shard in shards}
        assert {p["parent_id"] for p in pairs} <= shard_ids
        # synthesizer stages nest under the per-pair spans
        pair_ids = {p["span_id"] for p in pairs}
        featurized = _by_name(records, "featurize")
        assert featurized
        assert {f["parent_id"] for f in featurized} <= pair_ids
        assert root["attributes"]["pairs"] > 0
        assert root["attributes"]["execution_cache_hits"] >= 0

    def test_parallel_traced_export_is_deterministic(self, tiny_corpus):
        def span_names():
            tracer = Tracer()
            build_nvbench(
                corpus=tiny_corpus, config=_config(), workers=2, tracer=tracer
            )
            return [r["name"] for r in tracer.finished()]

        assert span_names() == span_names()

    def test_serial_traced_build_matches_untraced(self, tiny_corpus):
        plain = build_nvbench(corpus=tiny_corpus, config=_config())
        tracer = Tracer()
        traced_build = build_nvbench(
            corpus=tiny_corpus, config=_config(), tracer=tracer
        )
        assert traced_build.pairs == plain.pairs
        assert _by_name(tracer.finished(), "corpus_build") == []  # corpus given
        assert _by_name(tracer.finished(), "filter_train")


class TestTrainTracing:
    def test_train_emits_epoch_and_step_spans(self, small_nvbench):
        from repro.neural.data import build_dataset
        from repro.neural.model import Seq2Vis
        from repro.neural.trainer import TrainConfig, train_model

        dataset = build_dataset(
            small_nvbench.pairs[:24], small_nvbench.databases
        )
        model = Seq2Vis(
            len(dataset.in_vocab), len(dataset.out_vocab), "basic", 12, 16,
            seed=0,
        )
        tracer = Tracer()
        result = train_model(
            model, dataset, dataset,
            TrainConfig(epochs=2, batch_size=8), tracer=tracer,
        )
        records = tracer.finished()
        (train,) = _by_name(records, "train")
        assert train["attributes"]["epochs_run"] == len(result.train_losses)
        epochs = _by_name(records, "epoch")
        assert len(epochs) == len(result.train_losses)
        for epoch in epochs:
            assert epoch["parent_id"] == train["span_id"]
            assert epoch["attributes"]["train_loss"] == pytest.approx(
                result.train_losses[epoch["attributes"]["epoch"]]
            )
            assert epoch["attributes"]["steps"] > 0
        steps = _by_name(records, "step")
        assert len(steps) == sum(e["attributes"]["steps"] for e in epochs)
        assert len(_by_name(records, "evaluate")) == len(epochs)

    def test_tracing_does_not_change_training(self, small_nvbench):
        from repro.neural.data import build_dataset
        from repro.neural.model import Seq2Vis
        from repro.neural.trainer import TrainConfig, train_model

        dataset = build_dataset(
            small_nvbench.pairs[:24], small_nvbench.databases
        )

        def run(tracer):
            model = Seq2Vis(
                len(dataset.in_vocab), len(dataset.out_vocab), "basic", 12, 16,
                seed=0,
            )
            return train_model(
                model, dataset, dataset,
                TrainConfig(epochs=2, batch_size=8), tracer=tracer,
            ).train_losses

        assert run(None) == run(Tracer())


@pytest.fixture(scope="module")
def traced_server(small_nvbench):
    """A baseline-only server with an in-memory span exporter."""
    from repro.serve import (
        BackgroundServer, InferenceServer, ModelRegistry, ServerConfig,
    )

    registry = ModelRegistry()
    registry.register_baselines()
    registry.set_default("deepeye")
    exporter = InMemoryExporter()
    server = InferenceServer(
        registry,
        small_nvbench.databases,
        ServerConfig(port=0, max_batch_size=4, flush_interval=0.01),
        tracer=Tracer(exporter=exporter),
    )
    with BackgroundServer(server) as background:
        yield server, background.client(), exporter


class TestServeTracing:
    def test_one_trace_from_ingress_through_decode(self, traced_server,
                                                   small_nvbench):
        _, client, exporter = traced_server
        pair = small_nvbench.pairs[0]
        body = client.translate(pair.source_nl, pair.db_name, use_cache=False)
        trace_id = body["trace_id"]
        records = [
            r for r in exporter.records() if r["trace_id"] == trace_id
        ]
        (request,) = _by_name(records, "http.request")
        assert request["attributes"]["target"] == "/translate"
        assert request["attributes"]["status"] == 200
        (wait,) = _by_name(records, "batch.wait")
        (decode,) = _by_name(records, "decode")
        for span in (wait, decode):
            assert span["parent_id"] == request["span_id"]
            assert span["attributes"]["model"] == "deepeye"
        assert decode["attributes"]["batch_size"] >= 1

    def test_trace_id_header_roundtrip(self, traced_server, small_nvbench):
        server, _, exporter = traced_server
        pair = small_nvbench.pairs[1]
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30.0
        )
        try:
            inbound = "feedfacefeedface"
            connection.request(
                "POST", "/translate",
                body=json.dumps(
                    {"question": pair.source_nl, "db": pair.db_name,
                     "use_cache": False}
                ),
                headers={"Connection": "close", "x-trace-id": inbound},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert response.getheader("X-Trace-Id") == inbound
            assert payload["trace_id"] == inbound
        finally:
            connection.close()
        decodes = [
            r for r in _by_name(exporter.records(), "decode")
            if r["trace_id"] == inbound
        ]
        assert len(decodes) == 1

    def test_cached_response_gets_fresh_trace_id(self, traced_server,
                                                 small_nvbench):
        _, client, _ = traced_server
        pair = small_nvbench.pairs[2]
        first = client.translate(pair.source_nl, pair.db_name)
        second = client.translate(pair.source_nl, pair.db_name)
        assert second["cached"] is True
        assert second["trace_id"] != first["trace_id"]

    def test_metrics_reports_tracing_counters(self, traced_server):
        _, client, _ = traced_server
        report = client.metrics()
        tracing = report["tracing"]
        assert tracing["enabled"] is True
        assert tracing["spans_finished"] >= 1

    def test_untraced_server_has_no_trace_fields(self, small_nvbench):
        from repro.serve import (
            BackgroundServer, InferenceServer, ModelRegistry, ServerConfig,
        )

        registry = ModelRegistry()
        registry.register_baselines()
        registry.set_default("deepeye")
        server = InferenceServer(
            registry, small_nvbench.databases, ServerConfig(port=0)
        )
        pair = small_nvbench.pairs[0]
        with BackgroundServer(server) as background:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30.0
            )
            try:
                connection.request(
                    "POST", "/translate",
                    body=json.dumps(
                        {"question": pair.source_nl, "db": pair.db_name}
                    ),
                    headers={"Connection": "close"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 200
            assert response.getheader("X-Trace-Id") is None
            assert "trace_id" not in payload
            assert "tracing" not in background.client().metrics()


class TestTranslateBatchTracing:
    def test_batch_spans_and_unchanged_results(self, small_nvbench):
        from repro.neural.data import build_dataset
        from repro.neural.model import Seq2Vis
        from repro.serve import translate_batch

        dataset = build_dataset(
            small_nvbench.pairs[:24], small_nvbench.databases
        )
        model = Seq2Vis(
            len(dataset.in_vocab), len(dataset.out_vocab), "basic", 12, 16,
            seed=1,
        )
        names = sorted(small_nvbench.databases)
        requests = [
            ("how many rows per category?", small_nvbench.databases[names[0]]),
            ("show average price by type", small_nvbench.databases[names[1]]),
        ]
        plain = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests
        )
        tracer = Tracer()
        traced_results = translate_batch(
            model, dataset.in_vocab, dataset.out_vocab, requests,
            tracer=tracer,
        )
        assert [r.tokens for r in traced_results] == [r.tokens for r in plain]
        names_seen = [r["name"] for r in tracer.finished()]
        assert names_seen == ["encode", "decode", "parse"]
        parse = tracer.finished()[-1]
        assert parse["attributes"]["parsed"] == sum(
            1 for r in traced_results if r.ok
        )


class TestTraceCLI:
    def test_build_trace_and_summarize(self, tmp_path, capsys):
        from repro.cli import main

        out_plain = tmp_path / "plain.json"
        out_traced = tmp_path / "traced.json"
        trace_path = tmp_path / "build.jsonl"
        base = ["build-benchmark", "--databases", "3", "--pairs-per-db", "3",
                "--row-scale", "0.3", "--seed", "3", "--workers", "2"]
        assert main(base + ["--out", str(out_plain)]) == 0
        assert main(
            base + ["--out", str(out_traced), "--trace", str(trace_path)]
        ) == 0
        # Tracing never changes the benchmark: byte-identical pair files.
        assert out_plain.read_bytes() == out_traced.read_bytes()

        records = load_spans(str(trace_path))
        assert _by_name(records, "build_nvbench")
        assert len(_by_name(records, "shard")) == 3  # one per database

        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "build_nvbench" in output
        assert "shard ×3" in output
        assert "stage breakdown" in output

    def test_summarize_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["trace", "summarize", str(tmp_path / "absent.jsonl")]
        ) == 2
        assert "no such span export" in capsys.readouterr().err
