"""Tests for the Table 1 chart-validity rules and axis arrangement."""

from repro.core.vis_rules import (
    GROUP_BINNING,
    GROUP_GROUPING,
    GROUP_NONE,
    arrange_axes,
    chart_specs_for,
)
from repro.grammar.ast_nodes import Attribute


def _attr(col):
    return Attribute(column=col, table="t")


class TestChartSpecsFor:
    def test_one_categorical(self):
        types = {spec.vis_type for spec in chart_specs_for(["C"])}
        assert types == {"bar", "pie"}
        assert all(spec.count_measure for spec in chart_specs_for(["C"]))

    def test_one_temporal_allows_line(self):
        types = {spec.vis_type for spec in chart_specs_for(["T"])}
        assert types == {"bar", "pie", "line"}

    def test_one_quantitative_is_histogram(self):
        specs = chart_specs_for(["Q"])
        assert [spec.vis_type for spec in specs] == ["bar"]
        assert specs[0].x_group == GROUP_BINNING

    def test_two_categorical_is_invalid(self):
        assert chart_specs_for(["C", "C"]) == []

    def test_signature_is_order_insensitive(self):
        assert chart_specs_for(["Q", "C"]) == chart_specs_for(["C", "Q"])

    def test_qq_is_scatter_only(self):
        specs = chart_specs_for(["Q", "Q"])
        assert [spec.vis_type for spec in specs] == ["scatter"]
        assert specs[0].x_group == GROUP_NONE

    def test_three_variable_rules(self):
        assert {s.vis_type for s in chart_specs_for(["T", "Q", "C"])} == {
            "grouping line",
            "stacked bar",
        }
        assert {s.vis_type for s in chart_specs_for(["C", "Q", "C"])} == {"stacked bar"}
        assert {s.vis_type for s in chart_specs_for(["Q", "Q", "C"])} == {
            "grouping scatter"
        }

    def test_unknown_signature_empty(self):
        assert chart_specs_for(["T", "T"]) == []
        assert chart_specs_for(["C", "C", "C"]) == []

    def test_grouped_specs_need_aggregate(self):
        for spec in chart_specs_for(["C", "Q"]):
            if spec.x_group == GROUP_GROUPING:
                assert spec.needs_aggregate
            if spec.x_group == GROUP_NONE:
                assert not spec.needs_aggregate


class TestArrangeAxes:
    def test_cq_bar_puts_category_on_x(self):
        spec = [s for s in chart_specs_for(["C", "Q"]) if s.x_group == GROUP_GROUPING][0]
        axes = arrange_axes([(_attr("amount"), "Q"), (_attr("city"), "C")], spec)
        assert axes[0].column == "city"
        assert axes[1].column == "amount"

    def test_tq_line_puts_time_on_x(self):
        spec = [s for s in chart_specs_for(["Q", "T"]) if s.vis_type == "line"][0]
        axes = arrange_axes([(_attr("price"), "Q"), (_attr("day"), "T")], spec)
        assert axes[0].column == "day"

    def test_stacked_bar_axis_roles(self):
        spec = [s for s in chart_specs_for(["C", "Q", "C"])][0]
        axes = arrange_axes(
            [(_attr("region"), "C"), (_attr("sales"), "Q"), (_attr("category"), "C")],
            spec,
        )
        assert axes[1].column == "sales"
        assert {axes[0].column, axes[2].column} == {"region", "category"}

    def test_grouping_scatter_puts_categorical_on_color(self):
        spec = chart_specs_for(["Q", "Q", "C"])[0]
        axes = arrange_axes(
            [(_attr("x1"), "Q"), (_attr("kind"), "C"), (_attr("x2"), "Q")], spec
        )
        assert axes[2].column == "kind"

    def test_grouping_line_time_x_category_color(self):
        spec = [s for s in chart_specs_for(["T", "Q", "C"]) if s.vis_type == "grouping line"][0]
        axes = arrange_axes(
            [(_attr("country"), "C"), (_attr("cases"), "Q"), (_attr("day"), "T")], spec
        )
        assert axes[0].column == "day"
        assert axes[1].column == "cases"
        assert axes[2].column == "country"
