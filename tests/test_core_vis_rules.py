"""Tests for the Table 1 chart-validity rules, axis arrangement, and
the validating side (:func:`validate_chart`)."""

from repro.core.vis_rules import (
    GROUP_BINNING,
    GROUP_GROUPING,
    GROUP_NONE,
    arrange_axes,
    chart_specs_for,
    validate_chart,
)
from repro.grammar.ast_nodes import Attribute
from repro.grammar.serialize import from_tokens


def _attr(col):
    return Attribute(column=col, table="t")


class TestChartSpecsFor:
    def test_one_categorical(self):
        types = {spec.vis_type for spec in chart_specs_for(["C"])}
        assert types == {"bar", "pie"}
        assert all(spec.count_measure for spec in chart_specs_for(["C"]))

    def test_one_temporal_allows_line(self):
        types = {spec.vis_type for spec in chart_specs_for(["T"])}
        assert types == {"bar", "pie", "line"}

    def test_one_quantitative_is_histogram(self):
        specs = chart_specs_for(["Q"])
        assert [spec.vis_type for spec in specs] == ["bar"]
        assert specs[0].x_group == GROUP_BINNING

    def test_two_categorical_is_invalid(self):
        assert chart_specs_for(["C", "C"]) == []

    def test_signature_is_order_insensitive(self):
        assert chart_specs_for(["Q", "C"]) == chart_specs_for(["C", "Q"])

    def test_qq_is_scatter_only(self):
        specs = chart_specs_for(["Q", "Q"])
        assert [spec.vis_type for spec in specs] == ["scatter"]
        assert specs[0].x_group == GROUP_NONE

    def test_three_variable_rules(self):
        assert {s.vis_type for s in chart_specs_for(["T", "Q", "C"])} == {
            "grouping line",
            "stacked bar",
        }
        assert {s.vis_type for s in chart_specs_for(["C", "Q", "C"])} == {"stacked bar"}
        assert {s.vis_type for s in chart_specs_for(["Q", "Q", "C"])} == {
            "grouping scatter"
        }

    def test_unknown_signature_empty(self):
        assert chart_specs_for(["T", "T"]) == []
        assert chart_specs_for(["C", "C", "C"]) == []

    def test_grouped_specs_need_aggregate(self):
        for spec in chart_specs_for(["C", "Q"]):
            if spec.x_group == GROUP_GROUPING:
                assert spec.needs_aggregate
            if spec.x_group == GROUP_NONE:
                assert not spec.needs_aggregate


class TestArrangeAxes:
    def test_cq_bar_puts_category_on_x(self):
        spec = [s for s in chart_specs_for(["C", "Q"]) if s.x_group == GROUP_GROUPING][0]
        axes = arrange_axes([(_attr("amount"), "Q"), (_attr("city"), "C")], spec)
        assert axes[0].column == "city"
        assert axes[1].column == "amount"

    def test_tq_line_puts_time_on_x(self):
        spec = [s for s in chart_specs_for(["Q", "T"]) if s.vis_type == "line"][0]
        axes = arrange_axes([(_attr("price"), "Q"), (_attr("day"), "T")], spec)
        assert axes[0].column == "day"

    def test_stacked_bar_axis_roles(self):
        spec = [s for s in chart_specs_for(["C", "Q", "C"])][0]
        axes = arrange_axes(
            [(_attr("region"), "C"), (_attr("sales"), "Q"), (_attr("category"), "C")],
            spec,
        )
        assert axes[1].column == "sales"
        assert {axes[0].column, axes[2].column} == {"region", "category"}

    def test_grouping_scatter_puts_categorical_on_color(self):
        spec = chart_specs_for(["Q", "Q", "C"])[0]
        axes = arrange_axes(
            [(_attr("x1"), "Q"), (_attr("kind"), "C"), (_attr("x2"), "Q")], spec
        )
        assert axes[2].column == "kind"

    def test_grouping_line_time_x_category_color(self):
        spec = [s for s in chart_specs_for(["T", "Q", "C"]) if s.vis_type == "grouping line"][0]
        axes = arrange_axes(
            [(_attr("country"), "C"), (_attr("cases"), "Q"), (_attr("day"), "T")], spec
        )
        assert axes[0].column == "day"
        assert axes[1].column == "cases"
        assert axes[2].column == "country"


def _query(text):
    return from_tokens(text.split())


class TestValidateChart:
    def test_legal_chart_passes(self, flight_db):
        validation = validate_chart(
            _query(
                "visualize bar select flight.origin , count ( flight.* )"
                " group grouping flight.origin"
            ),
            flight_db,
        )
        assert validation.ok
        assert validation.status == validation.PASS
        assert validation.signature == ("C",)

    def test_illegal_vis_type_names_legal_alternatives(self, flight_db):
        validation = validate_chart(
            _query(
                "visualize scatter select flight.origin , count ( flight.* )"
                " group grouping flight.origin"
            ),
            flight_db,
        )
        assert validation.codes() == ["illegal-vis-type"]
        assert validation.status == validation.NEAR_MISS
        assert set(validation.violations[0].legal_types) == {"bar", "pie"}
        assert validation.legal_types == ("bar", "pie")

    def test_group_mismatch_when_layout_breaks_spec(self, flight_db):
        # Legal type (bar on C+Q) but an aggregate without its grouping.
        validation = validate_chart(
            _query("visualize bar select flight.origin , sum ( flight.price )"),
            flight_db,
        )
        assert "group-mismatch" in validation.codes()
        assert validation.status == validation.NEAR_MISS

    def test_bad_aggregate_over_categorical(self, flight_db):
        validation = validate_chart(
            _query(
                "visualize bar select flight.origin , avg ( flight.fno )"
            ),
            flight_db,
        )
        # avg(C) corrupts the signature: illegal-combination, but
        # repairable because the aggregate caused it.
        assert validation.codes() == ["illegal-combination", "bad-aggregate"]
        assert validation.status == validation.NEAR_MISS
        assert validation.violations[0].repairable

    def test_bare_illegal_combination_is_unrepairable(self, flight_db):
        validation = validate_chart(
            _query("visualize bar select flight.origin , flight.destination"),
            flight_db,
        )
        assert validation.codes() == ["illegal-combination"]
        assert validation.status == validation.FAIL
        assert not validation.violations[0].repairable

    def test_bin_unit_mismatches(self, flight_db):
        temporal = validate_chart(
            _query(
                "visualize bar select flight.departure_date , count ( flight.* )"
                " group binning flight.departure_date by numeric"
            ),
            flight_db,
        )
        assert "bin-unit" in temporal.codes()
        quantitative = validate_chart(
            _query(
                "visualize bar select flight.price , count ( flight.* )"
                " group binning flight.price by year"
            ),
            flight_db,
        )
        assert "bin-unit" in quantitative.codes()

    def test_unknown_literal_and_the_check_toggle(self, flight_db):
        query = _query(
            'visualize bar select flight.origin , flight.price'
            ' filter = flight.origin "APX"'
        )
        checked = validate_chart(query, flight_db)
        assert checked.codes() == ["unknown-literal"]
        assert checked.violations[0].value == "APX"
        unchecked = validate_chart(query, flight_db, check_literals=False)
        assert unchecked.ok

    def test_case_insensitive_literal_passes(self, flight_db):
        validation = validate_chart(
            _query(
                'visualize bar select flight.origin , flight.price'
                ' filter = flight.origin "apg"'
            ),
            flight_db,
        )
        assert validation.ok

    def test_unknown_column_fails(self, flight_db):
        validation = validate_chart(
            _query("visualize bar select flight.altitude , flight.price"),
            flight_db,
        )
        assert validation.codes() == ["unknown-column"]
        assert validation.status == validation.FAIL

    def test_to_json_shape(self, flight_db):
        payload = validate_chart(
            _query("visualize scatter select flight.origin , flight.price"),
            flight_db,
        ).to_json()
        assert payload["status"] == "near_miss"
        assert payload["signature"] == ["C", "Q"]
        assert payload["violations"][0]["code"] == "illegal-vis-type"
