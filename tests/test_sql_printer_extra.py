"""Extra printer/round-trip coverage: printing VIS trees as SQL and
join reconstruction details."""

import pytest

from repro.grammar.ast_nodes import (
    Attribute,
    Group,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    VisQuery,
)
from repro.sqlparse import parse_sql, to_sql


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


class TestVisTreeToSQL:
    def test_vis_query_prints_its_data_part(self, flight_db):
        vis = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("origin")),),
        ))
        sql = to_sql(vis, flight_db)
        assert sql.startswith("SELECT flight.origin, SUM(flight.price)")
        assert "GROUP BY flight.origin" in sql
        assert "VISUALIZE" not in sql.upper()

    def test_binning_prints_as_plain_group_by(self, flight_db):
        vis = VisQuery("line", QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="month"),),
        ))
        sql = to_sql(vis, flight_db)
        assert "GROUP BY flight.departure_date" in sql
        # The binning policy itself has no SQL counterpart.
        assert "month" not in sql.lower()

    def test_vis_sql_is_executable_via_reparse(self, small_nvbench):
        """The printed SQL of every synthesized vis re-parses."""
        seen = set()
        for pair in small_nvbench.pairs[:80]:
            key = (pair.db_name, pair.vis)
            if key in seen:
                continue
            seen.add(key)
            db = small_nvbench.database_of(pair)
            sql = to_sql(pair.vis, db)
            parse_sql(sql, db)


class TestPrinterClauses:
    def test_superlative_prints_order_limit(self, flight_db):
        query = SQLQuery(QueryCore(
            select=(attr("fno"), attr("price")),
            superlative=Superlative("least", 2, attr("price")),
        ))
        sql = to_sql(query, flight_db)
        assert sql.endswith("ORDER BY flight.price ASC LIMIT 2")

    def test_order_asc_desc(self, flight_db):
        for direction, keyword in (("asc", "ASC"), ("desc", "DESC")):
            query = SQLQuery(QueryCore(
                select=(attr("fno"), attr("price")),
                order=Order(direction, attr("price")),
            ))
            assert f"ORDER BY flight.price {keyword}" in to_sql(query, flight_db)

    def test_set_query_printed_with_uppercase_op(self, flight_db):
        body = SetQuery(
            "except",
            QueryCore(select=(attr("origin"),)),
            QueryCore(select=(attr("destination"),)),
        )
        sql = to_sql(SQLQuery(body), flight_db)
        assert " EXCEPT " in sql

    def test_comma_fallback_without_schema(self, flight_db):
        query = SQLQuery(QueryCore(
            select=(attr("name", table="airline"), attr("price")),
        ))
        sql = to_sql(query)  # no database: no FK information
        assert "FROM airline, flight" in sql

    def test_or_predicates_parenthesized(self, flight_db):
        query = parse_sql(
            "SELECT fno FROM flight WHERE origin = 'APG' OR origin = 'LAX'",
            flight_db,
        )
        sql = to_sql(query, flight_db)
        assert "(" in sql and "OR" in sql
        assert parse_sql(sql, flight_db) == query


class TestSchemaJoinEdges:
    def test_join_edges_direct(self, flight_db):
        edges = flight_db.join_edges("airline", "flight")
        assert len(edges) == 1
        assert edges[0].column == "code"

    def test_join_edges_missing(self, flight_db):
        assert flight_db.join_edges("flight", "flight") == []
