"""Determinism of the parallel, cached benchmark build.

The build must produce the same pair list no matter how it is executed:
sharded over a process pool or serial, with or without the execution
cache.  These are the guarantees that make ``workers=N`` and
``use_cache`` pure performance knobs.
"""

from __future__ import annotations

import pytest

from repro.core.nvbench import NVBenchConfig, build_nvbench
from repro.perf import BuildProfiler
from repro.spider.corpus import CorpusConfig, build_spider_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_spider_corpus(
        CorpusConfig(num_databases=3, pairs_per_database=4, row_scale=0.3, seed=3)
    )


def _config(use_cache: bool = True) -> NVBenchConfig:
    return NVBenchConfig(
        filter_training_pairs=12, use_cache=use_cache, seed=3
    )


class TestBuildDeterminism:
    def test_workers4_matches_workers1(self, tiny_corpus):
        serial = build_nvbench(corpus=tiny_corpus, config=_config(), workers=1)
        parallel = build_nvbench(corpus=tiny_corpus, config=_config(), workers=4)
        assert serial.pairs
        assert parallel.pairs == serial.pairs

    def test_cached_matches_uncached(self, tiny_corpus):
        cached = build_nvbench(corpus=tiny_corpus, config=_config(use_cache=True))
        uncached = build_nvbench(
            corpus=tiny_corpus, config=_config(use_cache=False)
        )
        assert cached.pairs
        assert cached.pairs == uncached.pairs

    def test_more_workers_than_databases(self, tiny_corpus):
        # Shard count is capped at the database count; empty shards never
        # reach the pool.
        serial = build_nvbench(corpus=tiny_corpus, config=_config(), workers=1)
        oversubscribed = build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=16
        )
        assert oversubscribed.pairs == serial.pairs

    def test_repeat_builds_identical(self, tiny_corpus):
        first = build_nvbench(corpus=tiny_corpus, config=_config())
        second = build_nvbench(corpus=tiny_corpus, config=_config())
        assert first.pairs == second.pairs


class TestBuildProfile:
    def test_serial_profile_has_stages_and_cache_counters(self, tiny_corpus):
        profiler = BuildProfiler()
        build_nvbench(corpus=tiny_corpus, config=_config(), profiler=profiler)
        report = profiler.report()
        for name in ("filter_train", "synthesize", "featurize", "score"):
            assert name in report["stages"]
            assert report["stages"][name]["calls"] >= 1
            assert report["stages"][name]["seconds"] >= 0.0
        # The filter-training pass primes the cache, so synthesis hits it.
        assert report["counters"]["execution_cache_hits"] > 0
        assert report["counters"]["execution_cache_misses"] > 0

    def test_parallel_profile_merges_worker_reports(self, tiny_corpus):
        profiler = BuildProfiler()
        build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=2, profiler=profiler
        )
        report = profiler.report()
        assert report["stages"]["featurize"]["calls"] >= 1
        assert report["counters"]["candidates_enumerated"] > 0

    def test_profile_json_roundtrip(self, tiny_corpus, tmp_path):
        import json

        profiler = BuildProfiler()
        build_nvbench(corpus=tiny_corpus, config=_config(), profiler=profiler)
        path = tmp_path / "profile.json"
        written = profiler.write_json(str(path))
        assert json.loads(path.read_text()) == written
