"""Determinism of the parallel, cached, sharded benchmark build.

The build must produce the same pair list no matter how it is executed:
sharded over a process pool or serial, with or without the execution
cache, streamed to disk or held in memory, fresh or resumed after a
kill.  These are the guarantees that make ``workers=N``, ``use_cache``,
``out=``, and ``resume=`` pure performance/robustness knobs.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.core.nvbench import NVBenchConfig, build_nvbench, load_nvbench_dir
from repro.perf import BuildProfiler
from repro.spider.corpus import CorpusConfig, build_spider_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_spider_corpus(
        CorpusConfig(num_databases=3, pairs_per_database=4, row_scale=0.3, seed=3)
    )


def _config(use_cache: bool = True) -> NVBenchConfig:
    return NVBenchConfig(
        filter_training_pairs=12, use_cache=use_cache, seed=3
    )


def _stream_config(use_cache: bool = True) -> NVBenchConfig:
    return NVBenchConfig(
        corpus=CorpusConfig(
            num_databases=3, pairs_per_database=4, row_scale=0.3, seed=3
        ),
        filter_training_pairs=12, use_cache=use_cache, seed=3,
    )


def _dir_digest(root) -> str:
    """One hash over every shard/corpus/manifest byte (cache excluded —
    the journal is a performance side-channel, not build output)."""
    digest = hashlib.sha256()
    for path in sorted(Path(root).rglob("*")):
        if path.is_file() and "cache" not in path.parts:
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


class TestBuildDeterminism:
    def test_workers4_matches_workers1(self, tiny_corpus):
        serial = build_nvbench(corpus=tiny_corpus, config=_config(), workers=1)
        parallel = build_nvbench(corpus=tiny_corpus, config=_config(), workers=4)
        assert serial.pairs
        assert parallel.pairs == serial.pairs

    def test_cached_matches_uncached(self, tiny_corpus):
        cached = build_nvbench(corpus=tiny_corpus, config=_config(use_cache=True))
        uncached = build_nvbench(
            corpus=tiny_corpus, config=_config(use_cache=False)
        )
        assert cached.pairs
        assert cached.pairs == uncached.pairs

    def test_more_workers_than_databases(self, tiny_corpus):
        # Shard count is capped at the database count; empty shards never
        # reach the pool.
        serial = build_nvbench(corpus=tiny_corpus, config=_config(), workers=1)
        oversubscribed = build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=16
        )
        assert oversubscribed.pairs == serial.pairs

    def test_repeat_builds_identical(self, tiny_corpus):
        first = build_nvbench(corpus=tiny_corpus, config=_config())
        second = build_nvbench(corpus=tiny_corpus, config=_config())
        assert first.pairs == second.pairs


class TestBuildProfile:
    def test_serial_profile_has_stages_and_cache_counters(self, tiny_corpus):
        profiler = BuildProfiler()
        build_nvbench(corpus=tiny_corpus, config=_config(), profiler=profiler)
        report = profiler.report()
        for name in ("filter_train", "synthesize", "featurize", "score"):
            assert name in report["stages"]
            assert report["stages"][name]["calls"] >= 1
            assert report["stages"][name]["seconds"] >= 0.0
        # The filter-training pass primes the cache, so synthesis hits it.
        assert report["counters"]["execution_cache_hits"] > 0
        assert report["counters"]["execution_cache_misses"] > 0

    def test_parallel_profile_merges_worker_reports(self, tiny_corpus):
        profiler = BuildProfiler()
        build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=2, profiler=profiler
        )
        report = profiler.report()
        assert report["stages"]["featurize"]["calls"] >= 1
        assert report["counters"]["candidates_enumerated"] > 0

    def test_profile_json_roundtrip(self, tiny_corpus, tmp_path):
        import json

        profiler = BuildProfiler()
        build_nvbench(corpus=tiny_corpus, config=_config(), profiler=profiler)
        path = tmp_path / "profile.json"
        written = profiler.write_json(str(path))
        assert json.loads(path.read_text()) == written


class _StopBuild(Exception):
    """Injected mid-build to simulate a killed process."""


class TestShardedDeterminismMatrix:
    """Serial == workers=N == interrupted-then-resumed, byte for byte."""

    def test_sharded_matches_in_memory(self, tiny_corpus, tmp_path):
        in_memory = build_nvbench(corpus=tiny_corpus, config=_config())
        sharded = build_nvbench(
            corpus=tiny_corpus, config=_config(), out=str(tmp_path / "dir")
        )
        assert list(sharded.pairs) == list(in_memory.pairs)

    def test_serial_and_parallel_shards_byte_identical(
        self, tiny_corpus, tmp_path
    ):
        build_nvbench(
            corpus=tiny_corpus, config=_config(), out=str(tmp_path / "serial")
        )
        build_nvbench(
            corpus=tiny_corpus, config=_config(), workers=2,
            out=str(tmp_path / "parallel"),
        )
        assert _dir_digest(tmp_path / "serial") == \
            _dir_digest(tmp_path / "parallel")

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        build_nvbench(
            config=_stream_config(), stream=True, out=str(tmp_path / "fresh")
        )

        def kill_after_first(unit_index: int, db_name: str) -> None:
            if unit_index >= 1:
                raise _StopBuild(db_name)

        with pytest.raises(_StopBuild):
            build_nvbench(
                config=_stream_config(), stream=True,
                out=str(tmp_path / "killed"), after_shard=kill_after_first,
            )
        # the killed directory is a strict prefix: manifest committed
        # only for completed shards
        partial = load_nvbench_dir(str(tmp_path / "killed"))
        full = load_nvbench_dir(str(tmp_path / "fresh"))
        assert 0 < len(partial.pairs) < len(full.pairs)

        profiler = BuildProfiler()
        build_nvbench(
            config=_stream_config(), stream=True,
            out=str(tmp_path / "killed"), resume=True, profiler=profiler,
        )
        counters = profiler.report()["counters"]
        assert counters["shards_skipped_clean"] >= 1
        assert counters["shards_built"] >= 1
        assert _dir_digest(tmp_path / "killed") == \
            _dir_digest(tmp_path / "fresh")

    def test_streamed_serial_matches_parallel(self, tmp_path):
        build_nvbench(
            config=_stream_config(), stream=True, out=str(tmp_path / "s")
        )
        build_nvbench(
            config=_stream_config(), stream=True, workers=2,
            out=str(tmp_path / "p"),
        )
        assert _dir_digest(tmp_path / "s") == _dir_digest(tmp_path / "p")

    def test_lazy_load_equals_built(self, tiny_corpus, tmp_path):
        built = build_nvbench(
            corpus=tiny_corpus, config=_config(), out=str(tmp_path / "dir")
        )
        loaded = load_nvbench_dir(str(tmp_path / "dir"))
        assert list(loaded.pairs) == list(built.pairs)
        assert set(loaded.databases) == set(tiny_corpus.databases)
        assert len(loaded.corpus.pairs) == len(tiny_corpus.pairs)
        # spot-check random access against iteration order
        assert loaded.pairs[0] == list(loaded.pairs)[0]
        assert loaded.pairs[len(loaded.pairs) - 1] == \
            list(loaded.pairs)[-1]


class TestResumeAndCorruption:
    def test_clean_resume_skips_every_shard(self, tiny_corpus, tmp_path):
        out = str(tmp_path / "dir")
        build_nvbench(corpus=tiny_corpus, config=_config(), out=out)
        profiler = BuildProfiler()
        build_nvbench(
            corpus=tiny_corpus, config=_config(), out=out, resume=True,
            profiler=profiler,
        )
        counters = profiler.report()["counters"]
        assert counters["shards_skipped_clean"] == counters["shards_total"]
        assert "shards_built" not in counters

    def test_truncated_shard_is_rebuilt_not_merged(self, tiny_corpus, tmp_path):
        out = tmp_path / "dir"
        build_nvbench(corpus=tiny_corpus, config=_config(), out=str(out))
        reference = _dir_digest(out)
        victim = sorted((out / "shards").glob("*.jsonl"))[0]
        lines = victim.read_text().splitlines(keepends=True)
        victim.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

        profiler = BuildProfiler()
        resumed = build_nvbench(
            corpus=tiny_corpus, config=_config(), out=str(out), resume=True,
            profiler=profiler,
        )
        counters = profiler.report()["counters"]
        assert counters["shards_rebuilt_dirty"] == 1
        assert counters["shards_built"] == 1
        assert counters["shards_skipped_clean"] == counters["shards_total"] - 1
        assert _dir_digest(out) == reference
        fresh = build_nvbench(corpus=tiny_corpus, config=_config())
        assert list(resumed.pairs) == list(fresh.pairs)

    def test_garbled_shard_is_rebuilt(self, tiny_corpus, tmp_path):
        out = tmp_path / "dir"
        build_nvbench(corpus=tiny_corpus, config=_config(), out=str(out))
        reference = _dir_digest(out)
        victim = sorted((out / "shards").glob("*.jsonl"))[-1]
        victim.write_text('{"not": "a pair record"}\ngarbage{{{\n')
        build_nvbench(
            corpus=tiny_corpus, config=_config(), out=str(out), resume=True
        )
        assert _dir_digest(out) == reference

    def test_config_change_dirties_every_shard(self, tiny_corpus, tmp_path):
        out = str(tmp_path / "dir")
        build_nvbench(corpus=tiny_corpus, config=_config(), out=out)
        changed = NVBenchConfig(
            filter_training_pairs=12, use_cache=True, seed=4
        )
        profiler = BuildProfiler()
        build_nvbench(
            corpus=tiny_corpus, config=changed, out=out, resume=True,
            profiler=profiler,
        )
        counters = profiler.report()["counters"]
        assert "shards_skipped_clean" not in counters
        assert counters["shards_built"] == counters["shards_total"]


class TestPersistentCache:
    def test_journal_primes_second_build(self, tiny_corpus, tmp_path):
        out = str(tmp_path / "dir")
        build_nvbench(corpus=tiny_corpus, config=_config(), out=out)
        journal = tmp_path / "dir" / "cache" / "journal.jsonl"
        assert journal.is_file() and journal.stat().st_size > 0

        # force a rebuild (no resume) — the journal survives and preloads
        profiler = BuildProfiler()
        rebuilt = build_nvbench(
            corpus=tiny_corpus, config=_config(), out=out, profiler=profiler
        )
        counters = profiler.report()["counters"]
        assert counters["cache_journal_preloaded"] > 0
        assert counters["cache_journal_corrupt"] == 0
        fresh = build_nvbench(corpus=tiny_corpus, config=_config())
        assert list(rebuilt.pairs) == list(fresh.pairs)

    def test_corrupt_journal_lines_are_skipped_and_counted(
        self, tiny_corpus, tmp_path
    ):
        out = str(tmp_path / "dir")
        build_nvbench(corpus=tiny_corpus, config=_config(), out=out)
        journal = tmp_path / "dir" / "cache" / "journal.jsonl"
        good = journal.read_text().splitlines(keepends=True)
        tampered = good[0].replace('"rows"', '"Rows"', 1)
        journal.write_text(
            "not json at all\n" + tampered + "".join(good[1:]) +
            good[-1][: len(good[-1]) // 2]
        )
        profiler = BuildProfiler()
        rebuilt = build_nvbench(
            corpus=tiny_corpus, config=_config(), out=out, profiler=profiler
        )
        counters = profiler.report()["counters"]
        assert counters["cache_journal_corrupt"] >= 2
        assert counters["cache_journal_preloaded"] > 0
        fresh = build_nvbench(corpus=tiny_corpus, config=_config())
        assert list(rebuilt.pairs) == list(fresh.pairs)

    def test_parallel_build_reuses_journal(self, tiny_corpus, tmp_path):
        out = str(tmp_path / "dir")
        build_nvbench(corpus=tiny_corpus, config=_config(), out=out)
        profiler = BuildProfiler()
        build_nvbench(
            corpus=tiny_corpus, config=_config(), out=out, workers=2,
            profiler=profiler,
        )
        counters = profiler.report()["counters"]
        assert counters["cache_journal_preloaded"] > 0
        # workers were pre-seeded, so they hit instead of re-executing
        assert counters["execution_cache_hits"] > 0
