"""Tests for the multi-dimension judge: verdicts, readability rules,
the scenario runner, and the accuracy matrix."""

from __future__ import annotations

import pytest

from repro.eval.judge import (
    DIMENSIONS,
    DEFAULT_RULES,
    ReadabilityRules,
    format_matrix,
    judge_chart,
    judge_matrix,
    readability_issues,
    run_scenario,
)
from repro.grammar.serialize import from_tokens
from repro.vis.data import VisData

BAR = (
    "visualize bar select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)
PIE = (
    "visualize pie select flight.origin , count ( flight.* )"
    " group grouping flight.origin"
)
YEAR_LINE = (
    "visualize line select flight.departure_date , sum ( flight.price )"
    " group binning flight.departure_date by year"
)


def _tree(text):
    return from_tokens(text.split())


def _data(vis_type="bar", rows=None, x_channel="nominal", color=None):
    return VisData(
        vis_type=vis_type,
        x_name="x",
        y_name="y",
        x_channel=x_channel,
        y_channel="quantitative",
        rows=[("a", 1.0), ("b", 2.0)] if rows is None else rows,
        color_name="series" if color else None,
        color_channel="nominal" if color else None,
    )


# One hand-built chart per readability rule, each violating exactly that
# rule, plus one fully-clean chart (the satellite's table-driven suite).
READABILITY_CASES = [
    pytest.param(
        _data(rows=[]),
        ["empty-result"],
        id="empty-result",
    ),
    pytest.param(
        _data(rows=[("x" * 40, 1.0), ("b", 2.0)]),
        ["label-overflow"],
        id="label-overflow-length",
    ),
    pytest.param(
        _data(rows=[(f"c{i}", 1.0) for i in range(30)]),
        ["label-overflow"],
        id="label-overflow-ticks",
    ),
    pytest.param(
        _data(
            vis_type="stacked bar",
            rows=[("a", 1.0, f"s{i}") for i in range(13)],
            color=True,
        ),
        ["series-count"],
        id="series-count",
    ),
    pytest.param(
        _data(vis_type="pie", rows=[(f"p{i}", 1.0) for i in range(13)]),
        ["series-count"],
        id="series-count-pie-slices",
    ),
    pytest.param(
        _data(x_channel="ordinal", rows=[("2020", 9.0)]),
        ["bin-sanity"],
        id="bin-sanity-degenerate",
    ),
    pytest.param(
        _data(
            x_channel="quantitative",
            rows=[(float(i), 1.0) for i in range(60)],
        ),
        ["bin-sanity"],
        id="bin-sanity-exploded",
    ),
    pytest.param(
        _data(),
        [],
        id="clean",
    ),
]


class TestReadabilityRules:
    @pytest.mark.parametrize("data, expected_codes", READABILITY_CASES)
    def test_each_rule_fires_alone(self, data, expected_codes):
        binned = any(code == "bin-sanity" for code in expected_codes)
        issues = readability_issues(data, binned=binned)
        assert [issue.code for issue in issues] == expected_codes

    def test_clean_chart_even_when_binned(self):
        data = _data(
            x_channel="ordinal", rows=[(str(y), 1.0) for y in range(5)]
        )
        assert readability_issues(data, binned=True) == []

    def test_thresholds_are_tunable(self):
        data = _data(rows=[("aaaa", 1.0), ("b", 2.0)])
        assert readability_issues(data) == []
        strict = ReadabilityRules(max_label_len=3)
        codes = [i.code for i in readability_issues(data, rules=strict)]
        assert codes == ["label-overflow"]

    def test_empty_result_short_circuits(self):
        issues = readability_issues(_data(rows=[]), binned=True)
        assert [issue.code for issue in issues] == ["empty-result"]

    def test_issue_messages_carry_numbers(self):
        issues = readability_issues(
            _data(rows=[(f"c{i}", 1.0) for i in range(30)])
        )
        assert "30" in issues[0].message

    def test_default_thresholds(self):
        assert DEFAULT_RULES.max_series == 12
        assert DEFAULT_RULES.min_bins == 2


class TestJudgeChart:
    def test_good_chart_passes_every_dimension(self, flight_db):
        tree = _tree(BAR)
        judgement = judge_chart(tree, flight_db, golds=[tree])
        assert set(judgement.verdicts) == set(DIMENSIONS)
        assert judgement.all_ok
        assert "vega-lite" in judgement.verdicts["validity"].reason

    def test_tree_matches_any_gold(self, flight_db):
        judgement = judge_chart(
            _tree(PIE), flight_db, golds=[_tree(BAR), _tree(PIE)]
        )
        assert judgement.ok("tree")

    def test_tree_dimension_needs_golds(self, flight_db):
        judgement = judge_chart(_tree(BAR), flight_db)
        assert "tree" not in judgement.verdicts
        assert judgement.ok("validity")

    def test_none_prediction_fails_everything(self, flight_db):
        judgement = judge_chart(None, flight_db, golds=[_tree(BAR)])
        assert not any(
            judgement.ok(dimension) for dimension in DIMENSIONS
        )
        assert "no parseable prediction" in judgement.verdicts["validity"].reason

    def test_illegal_chart_fails_legality_with_codes(self, flight_db):
        # scatter over a categorical grouping violates Table 1
        tree = _tree(
            "visualize scatter select flight.origin , count ( flight.* )"
            " group grouping flight.origin"
        )
        judgement = judge_chart(tree, flight_db)
        assert not judgement.ok("legality")
        assert "illegal-vis-type" in judgement.verdicts["legality"].reason

    def test_unknown_column_fails_validity_with_backend_name(self, flight_db):
        tree = _tree("visualize bar select flight.origin , flight.nope")
        judgement = judge_chart(tree, flight_db)
        assert not judgement.ok("validity")
        assert judgement.verdicts["validity"].reason.startswith("vega-lite")

    def test_binned_chart_readability_uses_bin_rule(self, flight_db):
        tree = _tree(YEAR_LINE)
        judgement = judge_chart(
            tree, flight_db, rules=ReadabilityRules(min_bins=5)
        )
        assert not judgement.ok("readability")
        assert "bin-sanity" in judgement.verdicts["readability"].reason

    def test_to_json_shape(self, flight_db):
        tree = _tree(BAR)
        payload = judge_chart(tree, flight_db, golds=[tree]).to_json()
        assert set(payload["dimensions"]) == set(DIMENSIONS)
        for verdict in payload["dimensions"].values():
            assert set(verdict) == {"ok", "reason"}


class TestScenarioRunner:
    @pytest.fixture(scope="class")
    def reports(self, small_nvbench):
        return {
            name: run_scenario(name, small_nvbench, max_examples=8)
            for name in ("standard", "ambiguous", "edit_session", "temporal")
        }

    def test_reports_cover_all_dimensions(self, reports):
        for report in reports.values():
            assert report.examples, report.scenario
            row = report.dimension_accuracy
            assert set(row) == set(DIMENSIONS)
            for value in row.values():
                assert 0.0 <= value <= 1.0

    def test_deterministic(self, small_nvbench):
        first = run_scenario("standard", small_nvbench, max_examples=6)
        second = run_scenario("standard", small_nvbench, max_examples=6)
        assert [e.to_json() for e in first.examples] == [
            e.to_json() for e in second.examples
        ]

    def test_edit_sessions_stay_whole(self, reports):
        report = reports["edit_session"]
        by_session: dict = {}
        for example in report.examples:
            by_session.setdefault(example.session, []).append(example.turn)
        for turns in by_session.values():
            assert turns == list(range(len(turns)))
            assert len(turns) >= 2

    def test_edit_turns_skip_the_pipeline(self, small_nvbench):
        # follow-up turns mutate the prior prediction, so the pipeline
        # runs once per session, not once per turn
        report = run_scenario("edit_session", small_nvbench, max_examples=6)
        sessions = {example.session for example in report.examples}
        opening_turns = sum(
            1 for example in report.examples if example.turn == 0
        )
        assert opening_turns == len(sessions)
        # pipeline counters only accumulate on opening turns: the
        # executions count stays bounded by sessions × candidate width
        assert report.counters["executions"] > 0

    def test_counters_aggregate_repair_totals(self, reports):
        counters = reports["standard"].counters
        assert "repaired_total" in counters
        assert "born_legal_total" in counters
        assert counters["born_legal_total"] > 0

    def test_matrix_shape(self, reports):
        matrix = judge_matrix(list(reports.values()))
        assert matrix["dimensions"] == list(DIMENSIONS)
        assert set(matrix["scenarios"]) == set(reports)
        for row in matrix["scenarios"].values():
            assert set(row["dimensions"]) == set(DIMENSIONS)
            assert "repair_rate" in row and "examples" in row

    def test_format_matrix_prints_every_scenario(self, reports):
        text = format_matrix(list(reports.values()))
        for name in reports:
            assert name in text
        for dimension in DIMENSIONS:
            assert dimension in text

    def test_unknown_scenario_raises(self, small_nvbench):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("nope", small_nvbench)
