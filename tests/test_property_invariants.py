"""Property-based invariants across the executor and the pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    Order,
    QueryCore,
    SQLQuery,
    Superlative,
)
from repro.storage.executor import Executor
from repro.storage.schema import Column, Database, Table


def make_db(rows):
    """A one-table database over (category C, value Q, day T) rows."""
    table = Table(
        "t", (Column("category", "C"), Column("value", "Q"), Column("day", "T"))
    )
    table.extend(rows)
    db = Database("propdb")
    db.add_table(table)
    return db


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=-100, max_value=100),
        st.sampled_from(["2020-01-01", "2020-06-15", "2021-03-03", "2021-12-31"]),
    ),
    min_size=1,
    max_size=40,
)


def attr(column, agg=None):
    return Attribute(column=column, table="t", agg=agg)


class TestExecutorProperties:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_group_counts_sum_to_rows(self, rows):
        db = make_db(rows)
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("category"), attr("*", agg="count")),
            groups=(Group("grouping", attr("category")),),
        )))
        assert sum(row[1] for row in result.rows) == len(rows)
        assert len(result.rows) == len({r[0] for r in rows})

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, st.integers(min_value=-100, max_value=100))
    def test_filter_partitions_rows(self, rows, threshold):
        db = make_db(rows)

        def count(op):
            result = Executor(db).execute(SQLQuery(QueryCore(
                select=(attr("*", agg="count"),),
                filter=Filter(Comparison(op, attr("value"), threshold)),
            )))
            return result.rows[0][0]

        assert count(">") + count("<=") == len(rows)
        assert count("=") + count("!=") == len(rows)

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_order_is_a_permutation_and_sorted(self, rows):
        db = make_db(rows)
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("category"), attr("value")),
            order=Order("asc", attr("value")),
        )))
        values = [row[1] for row in result.rows]
        assert values == sorted(values)
        assert sorted(result.rows) == sorted((r[0], r[1]) for r in rows)

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, st.integers(min_value=1, max_value=10))
    def test_superlative_takes_the_extremes(self, rows, k):
        db = make_db(rows)
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("category"), attr("value")),
            superlative=Superlative("most", k, attr("value")),
        )))
        assert len(result.rows) == min(k, len(rows))
        taken = [row[1] for row in result.rows]
        rest = sorted((r[1] for r in rows), reverse=True)[: len(taken)]
        assert sorted(taken, reverse=True) == rest

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_binning_covers_all_rows(self, rows):
        db = make_db(rows)
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(attr("day"), attr("*", agg="count")),
            groups=(Group("binning", attr("day"), bin_unit="year"),),
        )))
        assert sum(row[1] for row in result.rows) == len(rows)
        assert {row[0] for row in result.rows} <= {"2020", "2021"}

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_avg_between_min_and_max(self, rows):
        db = make_db(rows)
        result = Executor(db).execute(SQLQuery(QueryCore(
            select=(
                attr("value", agg="min"),
                attr("value", agg="avg"),
                attr("value", agg="max"),
            ),
        )))
        low, mean, high = result.rows[0]
        assert low <= mean <= high


class TestPipelineDeterminism:
    def test_benchmark_build_is_reproducible(self):
        from repro.core.nvbench import NVBenchConfig, build_nvbench
        from repro.grammar.serialize import to_text
        from repro.spider.corpus import CorpusConfig

        config = NVBenchConfig(
            corpus=CorpusConfig(
                num_databases=3, pairs_per_database=5, row_scale=0.3, seed=13
            ),
            filter_training_pairs=10,
            seed=13,
        )
        first = build_nvbench(config=config)
        second = build_nvbench(config=config)
        assert [p.nl for p in first.pairs] == [p.nl for p in second.pairs]
        assert [to_text(p.vis) for p in first.pairs] == [
            to_text(p.vis) for p in second.pairs
        ]

    def test_training_is_reproducible(self, small_nvbench):
        from repro.eval.harness import ExperimentConfig, build_model, make_datasets
        from repro.neural.trainer import TrainConfig, train_model

        config = ExperimentConfig(
            embed_dim=16, hidden_dim=24,
            train=TrainConfig(epochs=2, batch_size=16, seed=5),
        )
        losses = []
        for _ in range(2):
            train_set, val_set, _ = make_datasets(small_nvbench, config)
            model = build_model("basic", train_set, config)
            result = train_model(model, train_set, val_set, config.train)
            losses.append(result.train_losses)
        assert losses[0] == losses[1]
