"""Tests for NL edits (Section 2.5) and back-translation smoothing."""

import numpy as np

from repro.core.backtranslation import smooth
from repro.core.nl_edits import (
    NLVariant,
    remove_column_mentions,
    synthesize_nl_variants,
)
from repro.core.tree_edits import TreeEdit
from repro.grammar.ast_nodes import Attribute, Group, Order, QueryCore, VisQuery


def _vis(vis_type="bar"):
    origin = Attribute("origin", "flight")
    return VisQuery(vis_type, QueryCore(
        select=(origin, Attribute("*", "flight", agg="count")),
        groups=(Group("grouping", origin),),
    ))


def _edit(**kwargs):
    base = dict(
        added_groups=(Group("grouping", Attribute("origin", "flight")),),
        added_count=True,
        added_vis="bar",
    )
    base.update(kwargs)
    return TreeEdit(**base)


class TestRemoveColumnMentions:
    def test_middle_of_listing(self):
        nl = "Show the name, price and stock of all products."
        assert remove_column_mentions(nl, ["price"]) == (
            "Show the name and stock of all products."
        )

    def test_tail_of_listing(self):
        nl = "Show the name, price and stock of all products."
        assert remove_column_mentions(nl, ["stock"]) == (
            "Show the name, price of all products."
        ) or remove_column_mentions(nl, ["stock"]) == (
            "Show the name and price of all products."
        )

    def test_head_of_listing(self):
        nl = "Show the name, price and stock of all products."
        out = remove_column_mentions(nl, ["name"])
        assert "name" not in out
        assert "price" in out and "stock" in out

    def test_two_deletions(self):
        nl = "Show the name, price and stock of all products."
        out = remove_column_mentions(nl, ["price", "stock"])
        assert "price" not in out and "stock" not in out
        assert "name" in out

    def test_underscored_columns_match_spaced_phrases(self):
        nl = "List the release date and unit price of each device."
        out = remove_column_mentions(nl, ["unit_price"])
        assert "unit price" not in out
        assert "release date" in out

    def test_missing_column_is_noop(self):
        nl = "How many flights are there?"
        assert remove_column_mentions(nl, ["price"]) == nl


class TestSynthesizeVariants:
    def test_variant_count_respected(self):
        rng = np.random.default_rng(0)
        variants = synthesize_nl_variants(
            "How many flights per origin?", _edit(), _vis(), rng, n_variants=4
        )
        assert 1 <= len(variants) <= 4

    def test_variants_are_distinct(self):
        rng = np.random.default_rng(1)
        variants = synthesize_nl_variants(
            "How many flights per origin?", _edit(), _vis(), rng, n_variants=6
        )
        texts = [v.text for v in variants]
        assert len(texts) == len(set(texts))

    def test_vis_phrase_present(self):
        rng = np.random.default_rng(2)
        variants = synthesize_nl_variants(
            "How many flights per origin?", _edit(added_vis="pie"), _vis("pie"),
            rng, n_variants=6, back_translate=False,
        )
        blob = " ".join(v.text.lower() for v in variants)
        assert "pie" in blob or "proportion" in blob or "fraction" in blob

    def test_manual_edit_flagged_on_deletion(self):
        rng = np.random.default_rng(3)
        edit = _edit(deleted_attrs=(Attribute("price", "flight"),))
        variants = synthesize_nl_variants(
            "Show the origin and price of all flights.", edit, _vis(), rng, n_variants=3
        )
        assert all(v.manually_edited for v in variants)
        assert all("price" not in v.text.split("flights")[0] for v in variants)

    def test_no_manual_flag_without_deletion(self):
        rng = np.random.default_rng(4)
        variants = synthesize_nl_variants(
            "Show the origin of all flights.", _edit(), _vis(), rng, n_variants=3
        )
        assert not any(v.manually_edited for v in variants)

    def test_binning_phrase_mentions_unit(self):
        rng = np.random.default_rng(5)
        date_attr = Attribute("departure_date", "flight")
        vis = VisQuery("line", QueryCore(
            select=(date_attr, Attribute("*", "flight", agg="count")),
            groups=(Group("binning", date_attr, bin_unit="year"),),
        ))
        edit = TreeEdit(
            added_groups=(Group("binning", date_attr, bin_unit="year"),),
            added_count=True,
            added_vis="line",
        )
        variants = synthesize_nl_variants(
            "Show all departures.", edit, vis, rng, n_variants=6, back_translate=False
        )
        blob = " ".join(v.text.lower() for v in variants)
        assert "year" in blob

    def test_order_clause_mentioned(self):
        rng = np.random.default_rng(6)
        measure = Attribute("price", "flight", agg="sum")
        order = Order("desc", measure)
        vis = VisQuery("bar", QueryCore(
            select=(Attribute("origin", "flight"), measure),
            groups=(Group("grouping", Attribute("origin", "flight")),),
            order=order,
        ))
        edit = _edit(added_count=False, added_aggregate="sum", added_order=order)
        variants = synthesize_nl_variants(
            "Show flights.", edit, vis, rng, n_variants=6, back_translate=False
        )
        blob = " ".join(v.text.lower() for v in variants)
        assert "descending" in blob or "high to low" in blob

    def test_back_translated_flag(self):
        rng = np.random.default_rng(7)
        variants = synthesize_nl_variants(
            "How many flights per origin?", _edit(), _vis(), rng, n_variants=6
        )
        assert any(v.back_translated for v in variants)


class TestBackTranslation:
    def test_deterministic_under_seed(self):
        text = "Show the average price of each flight sorted by price."
        a = smooth(text, np.random.default_rng(9))
        b = smooth(text, np.random.default_rng(9))
        assert a == b

    def test_changes_some_words(self):
        text = "Show the average price and find the number of records."
        outputs = {smooth(text, np.random.default_rng(s)) for s in range(10)}
        assert len(outputs) > 1

    def test_preserves_case_of_sentence_start(self):
        text = "Show the data."
        for seed in range(10):
            out = smooth(text, np.random.default_rng(seed))
            assert out[0].isupper()
