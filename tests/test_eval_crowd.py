"""Tests for the human-study simulation (Section 3.3)."""

import numpy as np
import pytest

from repro.eval.crowd import (
    HumanStudySimulator,
    StudyConfig,
    interrater_sample,
)


@pytest.fixture(scope="module")
def study(small_nvbench_module):
    sim = HumanStudySimulator(StudyConfig(sample_fraction=0.5, seed=17))
    return sim.run(small_nvbench_module.pairs)


@pytest.fixture(scope="module")
def small_nvbench_module(request):
    # Reuse the session fixture through a module alias.
    return request.getfixturevalue("small_nvbench")


class TestStudyMechanics:
    def test_sample_size(self, small_nvbench_module, study):
        expected = int(len(small_nvbench_module.pairs) * 0.5)
        assert len(study.rated) == expected

    def test_crowd_votes_bounded(self, study):
        for rated in study.rated:
            assert 3 <= len(rated.t1_crowd_votes) <= 7
            assert 3 <= len(rated.t2_crowd_votes) <= 7

    def test_ratings_on_likert_scale(self, study):
        for rated in study.rated:
            for rating in (
                rated.t1_expert, rated.t2_expert, rated.t1_crowd, rated.t2_crowd,
            ):
                assert 1 <= rating <= 5

    def test_deterministic_under_seed(self, small_nvbench_module):
        sim = HumanStudySimulator(StudyConfig(sample_fraction=0.3, seed=4))
        a = sim.run(small_nvbench_module.pairs)
        b = HumanStudySimulator(StudyConfig(sample_fraction=0.3, seed=4)).run(
            small_nvbench_module.pairs
        )
        assert [r.t2_crowd for r in a.rated] == [r.t2_crowd for r in b.rated]

    def test_distribution_sums_to_one(self, study):
        for task in ("t1", "t2"):
            for population in ("expert", "crowd"):
                dist = study.distribution(task, population)
                assert sum(dist.values()) == pytest.approx(1.0)


class TestStudyShape:
    def test_majority_agrees_pairs_are_good(self, study):
        """The headline finding: most pairs rated agree+ in both tasks."""
        for task in ("t1", "t2"):
            for population in ("expert", "crowd"):
                assert study.agree_fraction(task, population) > 0.6

    def test_t2_higher_than_t1_for_experts(self, study):
        """Matching (T2) scores higher than handwritten-ness (T1)."""
        assert study.agree_fraction("t2", "expert") >= study.agree_fraction("t1", "expert") - 0.05

    def test_some_low_rated_pairs_exist(self, study):
        fraction = len(study.low_rated_pairs()) / len(study.rated)
        assert 0.0 < fraction < 0.3

    def test_t3_times_in_observed_range(self, study):
        times = np.asarray(study.t3_times)
        assert times.min() >= 37.0
        assert times.max() <= 411.0
        assert 60 <= np.median(times) <= 120


class TestManHours:
    def test_reduction_shape(self, small_nvbench_module):
        sim = HumanStudySimulator()
        accounting = sim.manhour_reduction(small_nvbench_module.pairs)
        # The synthesizer must be far cheaper than manual construction
        # (the paper reports 5.7%, i.e. a 17.5x speedup).
        assert accounting["ratio"] < 0.35
        assert accounting["speedup"] > 3.0
        assert accounting["scratch_minutes"] > accounting["synthesizer_minutes"]

    def test_scratch_time_uses_mean_seconds(self):
        sim = HumanStudySimulator()
        assert sim.manual_build_minutes(60, mean_seconds=120.0) == pytest.approx(120.0)


class TestInterRater:
    def test_sample_structure(self, study):
        sample = interrater_sample(study, sample=20)
        assert len(sample) == 20
        for x_position, ratings in sample:
            assert len(ratings) >= 4  # expert + >=3 crowd votes
            assert all(1 <= r <= 5 for r in ratings)

    def test_mostly_agreeing(self, study):
        """Figure 12's finding: most pairs have rating spread <= 1."""
        sample = interrater_sample(study, sample=50)
        tight = sum(1 for _, ratings in sample if max(ratings) - min(ratings) <= 1)
        assert tight / len(sample) > 0.5
