"""Tests for the synthetic Spider-like corpus substrate."""

import numpy as np
import pytest

from repro.spider.corpus import (
    CorpusConfig,
    build_spider_corpus,
    load_corpus,
    save_corpus,
)
from repro.spider.covid import COUNTRIES, build_covid_database
from repro.spider.datagen import build_database
from repro.spider.tpc import build_tpcds_database, build_tpch_database
from repro.spider.vocab import ARCHETYPES, DOMAINS
from repro.sqlparse import parse_sql
from repro.storage.executor import Executor
from repro.storage.temporal import parse_temporal


class TestVocabCatalog:
    def test_exactly_105_domains(self):
        assert len(DOMAINS) == 105

    def test_domain_names_unique(self):
        names = [d.name for d in DOMAINS]
        assert len(set(names)) == len(names)

    def test_every_archetype_reference_resolves(self):
        for domain in DOMAINS:
            for _, archetype in domain.tables:
                assert archetype in ARCHETYPES

    def test_heavy_domains_lead(self):
        by_weight = sorted(DOMAINS, key=lambda d: -d.weight)[:5]
        assert {d.name for d in by_weight} == {
            "sport", "customer", "school", "shop", "student",
        }


class TestDatabaseGeneration:
    def test_deterministic_for_seed(self):
        spec = DOMAINS[0]
        a = build_database(spec, "db", np.random.default_rng(5), row_scale=0.3)
        b = build_database(spec, "db", np.random.default_rng(5), row_scale=0.3)
        for name in a.tables:
            assert a.tables[name].rows == b.tables[name].rows

    def test_every_table_has_pk_and_rows(self):
        spec = DOMAINS[0]
        db = build_database(spec, "db", np.random.default_rng(1), row_scale=0.3)
        for noun, _ in spec.tables:
            table = db.table(noun)
            assert table.column_names[0] == f"{noun}_id"
            assert table.row_count >= 1

    def test_foreign_keys_reference_real_values(self):
        spec = DOMAINS[0]
        db = build_database(spec, "db", np.random.default_rng(2), row_scale=0.3)
        for fk in db.foreign_keys:
            child = set(db.table(fk.table).column_values(fk.column))
            parent = set(db.table(fk.ref_table).column_values(fk.ref_column))
            assert child <= parent

    def test_temporal_values_parse(self):
        spec = DOMAINS[0]
        db = build_database(spec, "db", np.random.default_rng(3), row_scale=0.3)
        for table in db.tables.values():
            for column in table.columns:
                if column.ctype == "T":
                    for value in table.column_values(column.name)[:20]:
                        assert parse_temporal(value) is not None

    def test_max_rows_respected(self):
        spec = DOMAINS[1]
        db = build_database(spec, "db", np.random.default_rng(4), row_scale=5.0, max_rows=50)
        assert all(t.row_count <= 50 for t in db.tables.values())


class TestCorpus:
    def test_deterministic(self):
        cfg = CorpusConfig(num_databases=4, pairs_per_database=5, row_scale=0.3, seed=9)
        a = build_spider_corpus(cfg)
        b = build_spider_corpus(cfg)
        assert [p.sql for p in a.pairs] == [p.sql for p in b.pairs]

    def test_every_pair_parses_and_executes(self, small_corpus):
        for pair in small_corpus.pairs:
            db = small_corpus.databases[pair.db_name]
            assert parse_sql(pair.sql, db) == pair.query
            Executor(db).execute(pair.query)

    def test_nl_mentions_selected_columns(self, small_corpus):
        """The clause-aligned property: bare selected columns appear in
        the NL text (ignoring aggregates and set-op branches)."""
        checked = 0
        for pair in small_corpus.pairs[:60]:
            core = pair.query.cores[0]
            for attr in core.select:
                if attr.is_aggregated or attr.column == "*":
                    continue
                checked += 1
                assert attr.column.replace("_", " ") in pair.nl.lower()
        assert checked > 30

    def test_small_config_picks_heaviest_domains(self):
        cfg = CorpusConfig(num_databases=3, pairs_per_database=2, row_scale=0.3, seed=1)
        corpus = build_spider_corpus(cfg)
        assert set(corpus.domains) <= {"sport", "customer", "school"}

    def test_large_config_covers_all_domains(self):
        cfg = CorpusConfig(num_databases=110, pairs_per_database=1, row_scale=0.1, seed=1)
        corpus = build_spider_corpus(cfg)
        assert len(corpus.domains) == 105

    def test_json_round_trip(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(small_corpus, str(path))
        loaded = load_corpus(str(path))
        assert len(loaded.pairs) == len(small_corpus.pairs)
        assert loaded.total_tables == small_corpus.total_tables
        for original, reloaded in zip(small_corpus.pairs, loaded.pairs):
            assert original.query == reloaded.query


class TestFixtureDatabases:
    def test_tpch_has_many_suppliers(self):
        db = build_tpch_database(scale=100)
        assert db.table("supplier").row_count == 100
        assert db.table("nation").row_count == 25

    def test_tpcds_sales_reference_items(self):
        db = build_tpcds_database(scale=50)
        item_keys = set(db.table("item").column_values("i_item_sk"))
        for value in db.table("store_sales").column_values("ss_item_sk"):
            assert value in item_keys

    def test_covid_schema_and_curve(self):
        db = build_covid_database(days=60)
        table = db.table("covid_19")
        assert table.row_count == 60 * len(COUNTRIES)
        assert {c.name for c in table.columns} >= {
            "date", "country", "confirmed", "active_cases",
            "recovered", "deaths", "daily_cases",
        }
        # Confirmed counts are non-decreasing per country.
        by_country = {}
        date_i = table.column_index("date")
        country_i = table.column_index("country")
        confirmed_i = table.column_index("confirmed")
        for row in table.rows:
            by_country.setdefault(row[country_i], []).append(
                (row[date_i], row[confirmed_i])
            )
        for series in by_country.values():
            values = [v for _, v in sorted(series)]
            assert all(b >= a for a, b in zip(values, values[1:]))
