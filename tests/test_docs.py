"""Docs integrity: links, anchors, and a README quickstart smoke test.

The documentation suite (README, DESIGN, EXPERIMENTS, ``docs/*.md``,
``benchmarks/README.md``) is part of the repo's contract, so CI checks
it like code:

* every relative markdown link points at a file that exists, and every
  ``#fragment`` at a heading that exists in the target (GitHub-style
  slugs);
* every ``python -m repro ...`` command in a fenced ``bash`` block names
  a real subcommand and only flags that subcommand accepts (validated
  against the live argparse tree — no command is executed);
* every ``python examples/<name>.py`` the README advertises exists;
* the README Quickstart python block runs verbatim.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [
        REPO / "README.md",
        REPO / "DESIGN.md",
        REPO / "EXPERIMENTS.md",
        REPO / "benchmarks" / "README.md",
        *(REPO / "docs").glob("*.md"),
    ]
)

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO))


def _strip_fenced_code(text: str) -> str:
    """Drop fenced code blocks so code snippets can't fake links."""
    kept, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return "\n".join(kept)


def _fenced_blocks(text: str, language: str):
    """Yield the contents of ```<language> fenced blocks."""
    blocks, current = [], None
    for line in text.splitlines():
        stripped = line.strip()
        if current is not None:
            if stripped == "```":
                blocks.append("\n".join(current))
                current = None
            else:
                current.append(line)
        elif stripped == f"```{language}":
            current = []
    return blocks


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to hyphens, drop the
    rest of the punctuation."""
    out = []
    for ch in heading.strip().lower():
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch == " ":
            out.append("-")
    return "".join(out)


def _anchors(path: Path):
    anchors = set()
    for line in _strip_fenced_code(path.read_text()).splitlines():
        match = re.match(r"^(#{1,6})\s+(.*)$", line)
        if match:
            anchors.add(_github_slug(match.group(2)))
    return anchors


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc):
    problems = []
    for target in LINK_RE.findall(_strip_fenced_code(doc.read_text())):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.is_file():
            problems.append(f"{target}: {path_part} does not exist")
            continue
        if fragment and fragment not in _anchors(dest):
            problems.append(f"{target}: no heading for #{fragment}")
    assert not problems, f"{_doc_id(doc)}: " + "; ".join(problems)


# --- CLI commands quoted in the docs ---------------------------------


def _subcommands(parser):
    import argparse

    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    return {}


def _option_strings(parser):
    return {opt for action in parser._actions for opt in action.option_strings}


def _repro_commands(text: str):
    """``python -m repro ...`` invocations from ``bash`` fenced blocks,
    with line continuations joined and comments stripped."""
    for block in _fenced_blocks(text, "bash"):
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line.startswith("$ "):
                line = line[2:]
            if line.startswith("python -m repro "):
                yield shlex.split(line, comments=True)[3:]


def _validate_command(tokens):
    """Check subcommand path and flags against the argparse tree."""
    parser = build_parser()
    depth = 0
    while tokens:
        choices = _subcommands(parser)
        if not choices or tokens[0] not in choices:
            break
        parser = choices[tokens.pop(0)]
        depth += 1
    assert depth, f"unknown subcommand {tokens[0] if tokens else '(none)'}"
    known = _option_strings(parser)
    for token in tokens:
        if token.startswith("--"):
            assert token in known, f"unknown flag {token}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_documented_cli_commands_parse(doc):
    for tokens in _repro_commands(doc.read_text()):
        try:
            _validate_command(list(tokens))
        except AssertionError as exc:
            raise AssertionError(
                f"{_doc_id(doc)}: python -m repro {' '.join(tokens)}: {exc}"
            ) from None


# --- README specifics -------------------------------------------------


def test_readme_example_scripts_exist():
    readme = (REPO / "README.md").read_text()
    scripts = set(re.findall(r"python (examples/\w+\.py)", readme))
    assert scripts, "README no longer mentions the examples/ scripts"
    missing = [s for s in scripts if not (REPO / s).is_file()]
    assert not missing, f"README references missing scripts: {missing}"
    on_disk = {f"examples/{p.name}" for p in (REPO / "examples").glob("*.py")}
    assert scripts == on_disk, (
        f"README examples list is stale: not mentioned {sorted(on_disk - scripts)}, "
        f"mentioned but gone {sorted(scripts - on_disk)}"
    )


def test_docs_index_covers_every_page():
    """docs/README.md must link every other page in docs/."""
    index = REPO / "docs" / "README.md"
    linked = {
        target.partition("#")[0]
        for target in LINK_RE.findall(_strip_fenced_code(index.read_text()))
    }
    pages = {p.name for p in (REPO / "docs").glob("*.md")} - {"README.md"}
    missing = sorted(pages - linked)
    assert not missing, f"docs/README.md does not index: {missing}"


def test_readme_quickstart_runs(capsys):
    readme = (REPO / "README.md").read_text()
    _, _, after = readme.partition("## Quickstart")
    assert after, "README has no Quickstart section"
    blocks = _fenced_blocks(after, "python")
    assert blocks, "Quickstart has no python block"
    namespace = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    capsys.readouterr()
    spec = namespace["spec"]
    assert isinstance(spec, dict) and "$schema" in spec
