"""Gradient checks for the autograd engine: every op is verified against
central finite differences."""

import numpy as np
import pytest

from repro.neural import autograd as ag
from repro.neural.autograd import Tensor, parameter


def numeric_grad(fn, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn() w.r.t. tensor.data."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        up = fn()
        flat[index] = original - eps
        down = fn()
        flat[index] = original
        grad_flat[index] = (up - down) / (2 * eps)
    return grad


def check(fn_builder, *tensors, atol=1e-5):
    """Compare autograd gradients with numeric ones for each tensor."""
    for tensor in tensors:
        tensor.zero_grad()
    out = fn_builder()
    out.backward()
    for tensor in tensors:
        expected = numeric_grad(lambda: fn_builder().item(), tensor)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, expected, atol=atol)


rng = np.random.default_rng(0)


class TestBasicOps:
    def test_add_broadcast(self):
        a = parameter(rng.normal(size=(3, 4)))
        b = parameter(rng.normal(size=(1, 4)))
        check(lambda: ag.masked_mean(ag.add(a, b), np.ones((3, 4))), a, b)

    def test_mul(self):
        a = parameter(rng.normal(size=(3, 4)))
        b = parameter(rng.normal(size=(3, 4)))
        check(lambda: ag.masked_mean(ag.mul(a, b), np.ones((3, 4))), a, b)

    def test_matmul(self):
        a = parameter(rng.normal(size=(3, 4)))
        b = parameter(rng.normal(size=(4, 2)))
        check(lambda: ag.masked_mean(ag.matmul(a, b), np.ones((3, 2))), a, b)

    def test_scale(self):
        a = parameter(rng.normal(size=(2, 3)))
        check(lambda: ag.masked_mean(ag.scale(a, -2.5), np.ones((2, 3))), a)

    def test_sigmoid_tanh(self):
        a = parameter(rng.normal(size=(2, 3)))
        check(lambda: ag.masked_mean(ag.sigmoid(a), np.ones((2, 3))), a)
        check(lambda: ag.masked_mean(ag.tanh(a), np.ones((2, 3))), a)

    def test_log(self):
        a = parameter(np.abs(rng.normal(size=(2, 3))) + 0.5)
        check(lambda: ag.masked_mean(ag.log(a), np.ones((2, 3))), a)


class TestShapingOps:
    def test_concat(self):
        a = parameter(rng.normal(size=(2, 3)))
        b = parameter(rng.normal(size=(2, 2)))
        check(lambda: ag.masked_mean(ag.concat([a, b], axis=1), np.ones((2, 5))), a, b)

    def test_slice_cols(self):
        a = parameter(rng.normal(size=(2, 6)))
        check(lambda: ag.masked_mean(ag.slice_cols(a, 1, 4), np.ones((2, 3))), a)

    def test_stack_seq(self):
        a = parameter(rng.normal(size=(2, 3)))
        b = parameter(rng.normal(size=(2, 3)))

        def fn():
            stacked = ag.stack_seq([a, b])
            flat = Tensor(stacked.data.reshape(2, 6), parents=(stacked,))
            flat._backward = lambda g: stacked._accumulate(g.reshape(2, 2, 3))
            return ag.masked_mean(flat, np.ones((2, 6)))

        check(fn, a, b)


class TestEmbeddingAndGather:
    def test_embedding_scatter_grad(self):
        weight = parameter(rng.normal(size=(5, 3)))
        indices = np.array([0, 2, 2, 4])
        check(
            lambda: ag.masked_mean(ag.embedding(weight, indices), np.ones((4, 3))),
            weight,
        )

    def test_gather_cols(self):
        a = parameter(rng.normal(size=(3, 4)))
        indices = np.array([1, 0, 3])
        check(lambda: ag.masked_mean(ag.gather_cols(a, indices), np.ones(3)), a)

    def test_scatter_probs(self):
        weights = parameter(np.abs(rng.normal(size=(2, 3))))
        indices = np.array([[0, 1, 1], [2, 2, 0]])
        check(
            lambda: ag.masked_mean(
                ag.gather_cols(ag.scatter_probs(weights, indices, 4), np.array([1, 2])),
                np.ones(2),
            ),
            weights,
        )


class TestAttentionOps:
    def test_attention_scores(self):
        memory = parameter(rng.normal(size=(2, 4, 3)))
        query = parameter(rng.normal(size=(2, 3)))
        check(
            lambda: ag.masked_mean(
                ag.attention_scores(memory, query), np.ones((2, 4))
            ),
            memory,
            query,
        )

    def test_attention_context(self):
        weights = parameter(rng.normal(size=(2, 4)))
        memory = parameter(rng.normal(size=(2, 4, 3)))
        check(
            lambda: ag.masked_mean(
                ag.attention_context(weights, memory), np.ones((2, 3))
            ),
            weights,
            memory,
        )

    def test_masked_softmax_masks_positions(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]))
        mask = np.array([[1.0, 1.0, 0.0]])
        probs = ag.masked_softmax(logits, mask)
        assert probs.data[0, 2] == pytest.approx(0.0, abs=1e-12)
        assert probs.data.sum() == pytest.approx(1.0)

    def test_masked_softmax_gradient(self):
        logits = parameter(rng.normal(size=(2, 4)))
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]], dtype=float)

        def fn():
            probs = ag.masked_softmax(logits, mask)
            return ag.masked_mean(ag.mul(probs, probs), np.ones((2, 4)))

        check(fn, logits)


class TestLoss:
    def test_cross_entropy_matches_manual(self):
        logits = parameter(rng.normal(size=(3, 5)))
        targets = np.array([1, 4, 0])
        loss = ag.cross_entropy_logits(logits, targets)
        manual = []
        for row, target in enumerate(targets):
            z = logits.data[row]
            manual.append(-(z[target] - np.log(np.exp(z - z.max()).sum()) - z.max()))
        np.testing.assert_allclose(loss.data, manual, atol=1e-9)

    def test_cross_entropy_gradient(self):
        logits = parameter(rng.normal(size=(3, 5)))
        targets = np.array([1, 4, 0])
        check(
            lambda: ag.masked_mean(
                ag.cross_entropy_logits(logits, targets), np.ones(3)
            ),
            logits,
        )

    def test_masked_mean_ignores_masked(self):
        a = Tensor(np.array([1.0, 100.0, 3.0]))
        assert ag.masked_mean(a, np.array([1.0, 0.0, 1.0])).item() == pytest.approx(2.0)


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self):
        a = parameter(np.array([[2.0]]))
        out = ag.add(ag.mul(a, a), a)  # a^2 + a -> grad 2a + 1 = 5
        out.backward(np.array([[1.0]]))
        assert a.grad[0, 0] == pytest.approx(5.0)

    def test_no_grad_for_constant_leaves(self):
        a = Tensor(np.ones((2, 2)))
        b = parameter(np.ones((2, 2)))
        out = ag.masked_mean(ag.mul(a, b), np.ones((2, 2)))
        out.backward()
        assert a.grad is None
        assert b.grad is not None
