"""Tests for the additional VIS backends: ggplot2, Plotly, ASCII."""

import json

import pytest

from repro.grammar.ast_nodes import Attribute, Group, QueryCore, VisQuery
from repro.vis import to_ascii, to_ggplot, to_plotly


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


@pytest.fixture()
def grouped_bar():
    return VisQuery("bar", QueryCore(
        select=(attr("origin"), attr("price", agg="sum")),
        groups=(Group("grouping", attr("origin")),),
    ))


@pytest.fixture()
def pie():
    return VisQuery("pie", QueryCore(
        select=(attr("origin"), attr("*", agg="count")),
        groups=(Group("grouping", attr("origin")),),
    ))


@pytest.fixture()
def stacked():
    return VisQuery("stacked bar", QueryCore(
        select=(attr("origin"), attr("price", agg="sum"), attr("destination")),
        groups=(
            Group("grouping", attr("origin")),
            Group("grouping", attr("destination")),
        ),
    ))


@pytest.fixture()
def scatter():
    return VisQuery("scatter", QueryCore(select=(attr("price"), attr("price"))))


class TestGgplot:
    def test_script_structure(self, flight_db, grouped_bar):
        script = to_ggplot(grouped_bar, flight_db)
        assert script.startswith("library(ggplot2)")
        assert "data.frame(" in script
        assert "geom_col()" in script
        assert "print(p)" in script

    def test_pie_uses_polar_coordinates(self, flight_db, pie):
        script = to_ggplot(pie, flight_db)
        assert 'coord_polar(theta = "y")' in script

    def test_stacked_bar_uses_fill(self, flight_db, stacked):
        script = to_ggplot(stacked, flight_db)
        assert "fill = flight_destination" in script

    def test_scatter_uses_points(self, flight_db, scatter):
        script = to_ggplot(scatter, flight_db)
        assert "geom_point()" in script

    def test_string_values_escaped(self, flight_db):
        from repro.vis.ggplot import _r_literal

        assert _r_literal('O"Hare') == '"O\\"Hare"'
        assert _r_literal(None) == "NA"
        assert _r_literal(3) == "3"

    def test_column_names_r_safe(self):
        from repro.vis.ggplot import _r_name

        assert _r_name("sum(flight.price)") == "sum_flight_price"
        assert _r_name("count(flight.*)") == "count_flight_all"
        assert _r_name("flight.origin") == "flight_origin"


class TestPlotly:
    def test_bar_figure(self, flight_db, grouped_bar):
        figure = to_plotly(grouped_bar, flight_db)
        assert figure["data"][0]["type"] == "bar"
        assert len(figure["data"][0]["x"]) == 3
        json.dumps(figure)

    def test_pie_labels_values(self, flight_db, pie):
        figure = to_plotly(pie, flight_db)
        trace = figure["data"][0]
        assert trace["type"] == "pie"
        assert set(trace["labels"]) == {"APG", "LAX", "BOS"}

    def test_stacked_bar_barmode_and_traces(self, flight_db, stacked):
        figure = to_plotly(stacked, flight_db)
        assert figure["layout"]["barmode"] == "stack"
        assert len(figure["data"]) > 1

    def test_line_mode(self, flight_db):
        vis = VisQuery("line", QueryCore(
            select=(attr("departure_date"), attr("price", agg="avg")),
            groups=(Group("binning", attr("departure_date"), bin_unit="year"),),
        ))
        figure = to_plotly(vis, flight_db)
        assert figure["data"][0]["mode"] == "lines+markers"

    def test_axis_titles(self, flight_db, grouped_bar):
        figure = to_plotly(grouped_bar, flight_db)
        assert figure["layout"]["xaxis"]["title"]["text"] == "flight.origin"


class TestAscii:
    def test_bar_rows_and_scaling(self, flight_db, grouped_bar):
        text = to_ascii(grouped_bar, flight_db, width=20)
        lines = text.splitlines()
        assert len(lines) == 4  # title + three origins
        assert any("█" * 20 in line for line in lines)

    def test_pie_shares_sum_to_one(self, flight_db, pie):
        text = to_ascii(pie, flight_db)
        shares = [
            float(line.rsplit(" ", 1)[-1].rstrip("%")) for line in text.splitlines()[1:]
        ]
        assert sum(shares) == pytest.approx(100.0, abs=0.5)

    def test_scatter_grid_shape(self, flight_db, scatter):
        text = to_ascii(scatter, flight_db, width=30, height=8)
        lines = text.splitlines()
        assert len(lines) == 10  # title + 8 grid rows + axis
        assert all(len(line) <= 32 for line in lines)
        assert "*" in text

    def test_stacked_bar_aggregates_series(self, flight_db, stacked):
        text = to_ascii(stacked, flight_db, width=20)
        assert "█" in text

    def test_every_nvbench_chart_renders(self, small_nvbench):
        seen = set()
        for pair in small_nvbench.pairs:
            key = (pair.db_name, pair.vis)
            if key in seen:
                continue
            seen.add(key)
            db = small_nvbench.database_of(pair)
            assert to_ascii(pair.vis, db)
            assert to_ggplot(pair.vis, db)
            json.dumps(to_plotly(pair.vis, db))
