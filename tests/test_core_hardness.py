"""Tests for the hardness classifier (Section 3.2)."""

from repro.core.hardness import Hardness, classify_hardness
from repro.grammar.ast_nodes import (
    Attribute,
    Comparison,
    Filter,
    Group,
    InSubquery,
    LogicalPredicate,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    VisQuery,
)


def attr(column, agg=None):
    return Attribute(column=column, table="t", agg=agg)


def vis(core, vis_type="bar"):
    return VisQuery(vis_type, core)


def comparison(column="v", value=1):
    return Comparison(">", attr(column), value)


class TestEasy:
    def test_bare_two_attribute_select(self):
        core = QueryCore(select=(attr("a"), attr("b")))
        assert classify_hardness(vis(core)) is Hardness.EASY

    def test_bare_scatter(self):
        core = QueryCore(select=(attr("x"), attr("y")))
        assert classify_hardness(vis(core, "scatter")) is Hardness.EASY


class TestMedium:
    def test_grouped_count_bar(self):
        core = QueryCore(
            select=(attr("a"), attr("*", agg="count")),
            groups=(Group("grouping", attr("a")),),
        )
        assert classify_hardness(vis(core)) is Hardness.MEDIUM

    def test_three_attribute_bare_select(self):
        core = QueryCore(select=(attr("a"), attr("b"), attr("c")))
        assert classify_hardness(vis(core, "stacked bar")) is Hardness.MEDIUM

    def test_filter_only(self):
        core = QueryCore(
            select=(attr("a"), attr("b")),
            filter=Filter(comparison()),
        )
        assert classify_hardness(vis(core)) is Hardness.MEDIUM

    def test_superlative_only(self):
        core = QueryCore(
            select=(attr("a"), attr("b")),
            superlative=Superlative("most", 3, attr("b")),
        )
        assert classify_hardness(vis(core)) is Hardness.MEDIUM


class TestHard:
    def test_group_plus_filter(self):
        core = QueryCore(
            select=(attr("a"), attr("*", agg="count")),
            groups=(Group("grouping", attr("a")),),
            filter=Filter(comparison()),
        )
        assert classify_hardness(vis(core)) is Hardness.HARD

    def test_group_plus_order(self):
        core = QueryCore(
            select=(attr("a"), attr("v", agg="sum")),
            groups=(Group("grouping", attr("a")),),
            order=Order("desc", attr("v", agg="sum")),
        )
        assert classify_hardness(vis(core)) is Hardness.HARD

    def test_nested_subquery_is_at_least_hard(self):
        sub = QueryCore(select=(attr("a"),), filter=Filter(comparison()))
        core = QueryCore(
            select=(attr("a"), attr("b")),
            filter=Filter(InSubquery(attr("a"), sub)),
        )
        assert classify_hardness(vis(core)) in (Hardness.HARD, Hardness.EXTRA_HARD)

    def test_plain_set_operation(self):
        left = QueryCore(select=(attr("a"), attr("b")))
        right = QueryCore(select=(attr("a"), attr("b")))
        query = vis(SetQuery("intersect", left, right))
        assert classify_hardness(query) is Hardness.HARD


class TestExtraHard:
    def test_group_filter_order_together(self):
        core = QueryCore(
            select=(attr("a"), attr("v", agg="sum")),
            groups=(Group("grouping", attr("a")),),
            filter=Filter(comparison()),
            order=Order("asc", attr("a")),
        )
        assert classify_hardness(vis(core)) is Hardness.EXTRA_HARD

    def test_set_operation_with_clauses(self):
        left = QueryCore(select=(attr("a"), attr("b")), filter=Filter(comparison()))
        right = QueryCore(
            select=(attr("a"), attr("b")),
            filter=Filter(
                LogicalPredicate("and", comparison("b"), comparison("c"))
            ),
        )
        query = vis(SetQuery("except", left, right))
        assert classify_hardness(query) is Hardness.EXTRA_HARD

    def test_nested_with_heavy_clauses(self):
        sub = QueryCore(select=(attr("a"),), filter=Filter(comparison()))
        core = QueryCore(
            select=(attr("a"), attr("v", agg="sum")),
            groups=(Group("grouping", attr("a")),),
            filter=Filter(
                LogicalPredicate(
                    "and",
                    InSubquery(attr("a"), sub),
                    comparison("v"),
                )
            ),
            order=Order("asc", attr("a")),
        )
        assert classify_hardness(vis(core)) is Hardness.EXTRA_HARD


class TestOnSQLQueries:
    def test_works_for_sql_queries_too(self):
        core = QueryCore(select=(attr("a"),))
        assert classify_hardness(SQLQuery(core)) is Hardness.EASY

    def test_ordering_is_monotonic_in_clauses(self):
        """Adding a clause never makes a query easier."""
        levels = list(Hardness)
        base = QueryCore(select=(attr("a"), attr("v", agg="sum")),
                         groups=(Group("grouping", attr("a")),))
        with_filter = QueryCore(
            select=base.select, groups=base.groups, filter=Filter(comparison())
        )
        with_both = QueryCore(
            select=base.select, groups=base.groups, filter=Filter(comparison()),
            order=Order("asc", attr("a")),
        )
        ranks = [
            levels.index(classify_hardness(vis(q)))
            for q in (base, with_filter, with_both)
        ]
        assert ranks == sorted(ranks)
