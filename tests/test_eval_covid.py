"""Tests for the COVID-19 case study scaffolding (Figure 19)."""

from repro.eval.covid_case import (
    attach_covid,
    case_study_queries,
    covid_training_pairs,
)
from repro.grammar.validate import validate_query
from repro.spider.covid import build_covid_database
from repro.storage.executor import Executor


class TestCaseQueries:
    def test_six_queries_one_expected_failure(self):
        queries = case_study_queries()
        assert len(queries) == 6
        assert sum(1 for q in queries if not q.expected_success) == 1

    def test_gold_trees_are_valid_and_executable(self):
        database = build_covid_database(days=60)
        for case in case_study_queries():
            validate_query(case.gold)
            result = Executor(database).execute(case.gold)
            assert result.row_count > 0

    def test_failure_case_mentions_until_today(self):
        failure = [q for q in case_study_queries() if not q.expected_success][0]
        assert "until today" in failure.nl

    def test_nl_mentions_gold_columns(self):
        for case in case_study_queries():
            x_attr = case.gold.primary_core.select[0]
            assert x_attr.column.replace("_", " ") in case.nl.lower()


class TestCovidTrainingPairs:
    def test_pairs_synthesized_on_covid_schema(self):
        database = build_covid_database(days=60)
        pairs = covid_training_pairs(database, n_pairs=12, seed=3)
        assert pairs
        for pair in pairs:
            assert pair.db_name == "covid_19"
            validate_query(pair.vis)

    def test_attach_is_idempotent(self):
        # attach_covid mutates the bench, so build a private tiny one
        # instead of touching the shared session fixture.
        from repro.core.nvbench import NVBenchConfig, build_nvbench
        from repro.spider.corpus import CorpusConfig

        bench = build_nvbench(config=NVBenchConfig(
            corpus=CorpusConfig(
                num_databases=2, pairs_per_database=4, row_scale=0.3, seed=2
            ),
            train_filter=False,
        ))
        before = len(bench.pairs)
        database = attach_covid(bench, n_pairs=10, seed=3)
        after_first = len(bench.pairs)
        attach_covid(bench, n_pairs=10, seed=3)
        assert len(bench.pairs) == after_first
        assert after_first > before
        assert database.name in bench.corpus.databases
