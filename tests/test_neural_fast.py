"""Fast-engine tests: fused kernels, flat Adam, dtype policy, batched
decode, and persistence of the new checkpoint metadata.

The fused LSTM kernel and the flat-buffer optimizer are validated two
ways: against finite differences (absolute ground truth, float64) and
against the retained reference implementations (``step_unfused``,
``ReferenceAdam``), which the seed test-suite already proved correct.
"""

import numpy as np
import pytest

from repro.neural import autograd as ag
from repro.neural.data import Example, Seq2VisDataset
from repro.neural.layers import LSTMCell
from repro.neural.model import Seq2Vis
from repro.neural.optimizer import Adam, ReferenceAdam
from repro.neural.persist import load_model, save_model
from repro.neural.trainer import TrainConfig, evaluate_loss, train_model
from repro.nlp.vocab import Vocabulary


def sum_all(t: ag.Tensor) -> ag.Tensor:
    """Scalar sum via masked_mean (the engine has no bare sum op)."""
    return ag.scale(ag.masked_mean(t, np.ones(t.shape)), float(t.data.size))


def toy_dataset(n_patterns: int = 6) -> Seq2VisDataset:
    examples = []
    for i in range(n_patterns):
        src = ["show", f"in{i}", "please"]
        tgt = ["select", f"out{i}", f"out{(i + 1) % n_patterns}"]
        examples.append(Example(src_tokens=src, tgt_tokens=tgt, pair=None))
    in_vocab = Vocabulary.build([e.src_tokens for e in examples])
    out_vocab = Vocabulary.build([e.tgt_tokens for e in examples])
    return Seq2VisDataset(examples=examples, in_vocab=in_vocab, out_vocab=out_vocab)


def toy_model(dataset, variant="attention", seed=1, **kw) -> Seq2Vis:
    return Seq2Vis(
        in_vocab_size=len(dataset.in_vocab),
        out_vocab_size=len(dataset.out_vocab),
        variant=variant,
        embed_dim=16,
        hidden_dim=24,
        seed=seed,
        **kw,
    )


def _lstm_inputs(seed=0, batch=3, in_dim=4, hidden=5):
    rng = np.random.default_rng(seed)
    make = lambda *shape: ag.Tensor(
        rng.normal(size=shape), requires_grad=True
    )
    x = make(batch, in_dim)
    w_x = make(in_dim, 4 * hidden)
    w_h = make(hidden, 4 * hidden)
    bias = make(1, 4 * hidden)
    h_prev = make(batch, hidden)
    c_prev = make(batch, hidden)
    return x, w_x, w_h, bias, h_prev, c_prev


def _lstm_scalar_loss(tensors, weights):
    """Deterministic scalar from (h, c) so both outputs get gradients."""
    x, w_x, w_h, bias, h_prev, c_prev = tensors
    h, c = ag.lstm_step(x, w_x, w_h, bias, h_prev, c_prev)
    return float((h.data * weights[0]).sum() + (c.data * weights[1]).sum()), (h, c)


class TestFusedLSTMGradients:
    def test_finite_difference_gradcheck_float64(self):
        tensors = _lstm_inputs()
        rng = np.random.default_rng(42)
        w_h_out = rng.normal(size=tensors[4].data.shape)
        w_c_out = rng.normal(size=tensors[5].data.shape)

        h, c = ag.lstm_step(*tensors)
        loss = ag.add(
            sum_all(ag.mul(h, ag.Tensor(w_h_out))),
            sum_all(ag.mul(c, ag.Tensor(w_c_out))),
        )
        loss.backward()

        eps = 1e-6
        for tensor in tensors:
            analytic = tensor.grad
            assert analytic is not None
            numeric = np.zeros_like(tensor.data)
            flat = tensor.data.reshape(-1)
            num_flat = numeric.reshape(-1)
            for index in range(flat.size):
                original = flat[index]
                flat[index] = original + eps
                plus, _ = _lstm_scalar_loss(tensors, (w_h_out, w_c_out))
                flat[index] = original - eps
                minus, _ = _lstm_scalar_loss(tensors, (w_h_out, w_c_out))
                flat[index] = original
                num_flat[index] = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_fused_matches_unfused_forward_bitwise(self):
        rng = np.random.default_rng(3)
        cell = LSTMCell(4, 5, rng)
        cell.to_dtype("float64")
        x = ag.Tensor(rng.normal(size=(3, 4)))
        state = cell.initial_state(3)
        cell.fused = True
        h_fused, c_fused = cell(x, state)
        cell.fused = False
        h_ref, c_ref = cell(x, state)
        np.testing.assert_array_equal(h_fused.data, h_ref.data)
        np.testing.assert_array_equal(c_fused.data, c_ref.data)

    def test_fused_matches_unfused_gradients(self):
        rng = np.random.default_rng(4)
        grads = {}
        for fused in (True, False):
            cell = LSTMCell(4, 5, np.random.default_rng(4))
            cell.fused = fused
            x = ag.Tensor(
                np.random.default_rng(9).normal(size=(3, 4)), requires_grad=True
            )
            h, c = cell(x, cell.initial_state(3))
            h2, c2 = cell(x, (h, c))  # chain two steps through the state
            ag.add(sum_all(h2), sum_all(c2)).backward()
            grads[fused] = {
                "x": x.grad.copy(),
                "w_x": cell.w_x.grad.copy(),
                "w_h": cell.w_h.grad.copy(),
                "bias": cell.bias.grad.copy(),
            }
        for key in grads[True]:
            np.testing.assert_allclose(
                grads[True][key], grads[False][key], rtol=1e-10, atol=1e-12
            )

    def test_c_only_backward_zeroes_output_gate(self):
        # Backprop through c alone: the output gate contributed nothing,
        # and the stashed h-gradient must not be required.
        tensors = _lstm_inputs(seed=7)
        h, c = ag.lstm_step(*tensors)
        sum_all(c).backward()
        assert tensors[1].grad is not None  # w_x got a gradient
        # o-gate block of the bias gradient is exactly zero
        hidden = tensors[5].data.shape[1]
        np.testing.assert_array_equal(
            tensors[3].grad[:, 3 * hidden :], np.zeros((1, hidden))
        )


class TestSequenceKernels:
    """The whole-recurrence node and the batched attention ops must
    agree with the per-step graph composition they replace."""

    def _seq_inputs(self, seed=0, batch=3, length=4, in_dim=3, hidden=2):
        rng = np.random.default_rng(seed)
        make = lambda *shape: ag.Tensor(rng.normal(size=shape), requires_grad=True)
        proj = make(batch, length, 4 * hidden)
        w_h = make(hidden, 4 * hidden)
        bias = make(1, 4 * hidden)
        h0 = make(batch, hidden)
        c0 = make(batch, hidden)
        mask = np.ones((batch, length))
        mask[0, -1] = 0.0  # padded positions exercise the blend
        mask[batch - 1, -2:] = 0.0
        return proj, w_h, bias, h0, c0, mask

    def _stepwise(self, proj, w_h, bias, h0, c0, mask, reverse):
        """Reference: chain lstm_step nodes with the layer-level blend."""
        batch, length = proj.shape[0], proj.shape[1]
        keep_cols = np.asarray(mask, dtype=proj.data.dtype)[:, :, None]
        order = range(length - 1, -1, -1) if reverse else range(length)
        h, c = h0, c0
        outputs = [None] * length
        for t in order:
            x_proj = ag.slice_time(proj, t)
            h_new, c_new = ag.lstm_step(
                None, None, w_h, bias, h, c, x_proj=x_proj
            )
            keep = keep_cols[:, t]
            if keep.all():
                h, c = h_new, c_new
            else:
                keep_t = ag.Tensor(keep)
                drop_t = ag.Tensor(1.0 - keep)
                h = ag.add(ag.mul(h_new, keep_t), ag.mul(h, drop_t))
                c = ag.add(ag.mul(c_new, keep_t), ag.mul(c, drop_t))
            outputs[t] = h
        return ag.stack_seq(outputs)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_lstm_seq_matches_stepwise_graph(self, reverse):
        readout = np.random.default_rng(99).normal(size=(3, 4, 2))
        grads = {}
        for mode in ("seq", "step"):
            proj, w_h, bias, h0, c0, mask = self._seq_inputs()
            if mode == "seq":
                h_seq = ag.lstm_seq(
                    proj, w_h, bias, h0, c0, keep=mask, reverse=reverse
                )
            else:
                h_seq = self._stepwise(proj, w_h, bias, h0, c0, mask, reverse)
            grads[mode + "_value"] = h_seq.data.copy()
            sum_all(ag.mul(h_seq, ag.Tensor(readout))).backward()
            grads[mode] = [t.grad.copy() for t in (proj, w_h, bias, h0, c0)]
        np.testing.assert_array_equal(grads["seq_value"], grads["step_value"])
        for got, want in zip(grads["seq"], grads["step"]):
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-11)

    def test_lstm_seq_finite_difference_gradcheck(self):
        readout = np.random.default_rng(5).normal(size=(2, 3, 2))

        def forward(tensors):
            proj, w_h, bias, h0, c0, mask = tensors
            h_seq = ag.lstm_seq(proj, w_h, bias, h0, c0, keep=mask)
            return h_seq, float((h_seq.data * readout).sum())

        tensors = self._seq_inputs(seed=8, batch=2, length=3, in_dim=2, hidden=2)
        h_seq, _ = forward(tensors)
        h_seq.backward(readout)
        eps = 1e-6
        for tensor in tensors[:5]:
            numeric = np.zeros_like(tensor.data)
            flat = tensor.data.reshape(-1)
            num_flat = numeric.reshape(-1)
            for index in range(flat.size):
                original = flat[index]
                flat[index] = original + eps
                _, plus = forward(tensors)
                flat[index] = original - eps
                _, minus = forward(tensors)
                flat[index] = original
                num_flat[index] = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(
                tensor.grad, numeric, rtol=1e-4, atol=1e-6
            )

    def test_attention_seq_ops_match_per_step(self):
        rng = np.random.default_rng(12)
        batch, steps, length, width = 3, 4, 5, 6
        src_mask = np.ones((batch, length))
        src_mask[1, -2:] = 0.0
        readout = rng.normal(size=(batch, steps, width))
        results = {}
        for mode in ("seq", "step"):
            gen = np.random.default_rng(12)
            memory = ag.Tensor(
                gen.normal(size=(batch, length, width)), requires_grad=True
            )
            q_seq = ag.Tensor(
                gen.normal(size=(batch, steps, width)), requires_grad=True
            )
            if mode == "seq":
                scores = ag.attention_scores_seq(q_seq, memory)
                weights = ag.masked_softmax(scores, mask=src_mask[:, None, :])
                context = ag.attention_context_seq(weights, memory)
            else:
                contexts = []
                for t in range(steps):
                    query = ag.slice_time(q_seq, t)
                    s_t = ag.attention_scores(memory, query)
                    w_t = ag.masked_softmax(s_t, mask=src_mask)
                    contexts.append(ag.attention_context(w_t, memory))
                context = ag.stack_seq(contexts)
            results[mode + "_value"] = context.data.copy()
            sum_all(ag.mul(context, ag.Tensor(readout))).backward()
            results[mode] = (memory.grad.copy(), q_seq.grad.copy())
        np.testing.assert_allclose(
            results["seq_value"], results["step_value"], rtol=1e-12, atol=1e-13
        )
        for got, want in zip(results["seq"], results["step"]):
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-11)


class TestFlatAdam:
    def _params(self, seed, dtype="float64"):
        rng = np.random.default_rng(seed)
        return [
            ag.Tensor(
                rng.normal(size=shape).astype(dtype), requires_grad=True
            )
            for shape in [(3, 4), (7,), (2, 2, 2)]
        ]

    def test_matches_reference_adam_trajectory(self):
        fast_params = self._params(0)
        ref_params = self._params(0)
        fast = Adam(fast_params, lr=1e-2, clip_norm=2.0)
        ref = ReferenceAdam(ref_params, lr=1e-2, clip_norm=2.0)
        grad_rng = np.random.default_rng(1)
        for _ in range(7):
            for fp, rp in zip(fast_params, ref_params):
                grad = grad_rng.normal(size=fp.data.shape) * 3.0
                fp.grad = grad.copy()
                rp.grad = grad.copy()
            fast.step()
            ref.step()
        for fp, rp in zip(fast_params, ref_params):
            np.testing.assert_allclose(fp.data, rp.data, rtol=1e-12, atol=1e-14)

    def test_none_grads_are_skipped(self):
        params = self._params(2)
        ref_params = self._params(2)
        fast = Adam(params, lr=1e-2)
        ref = ReferenceAdam(ref_params, lr=1e-2)
        params[1].grad = np.ones_like(params[1].data)
        ref_params[1].grad = np.ones_like(ref_params[1].data)
        fast.step()
        ref.step()
        # params without grads move identically (not at all, modulo the
        # zero-grad moment updates, which are zero)
        np.testing.assert_allclose(params[0].data, ref_params[0].data)
        np.testing.assert_allclose(params[1].data, ref_params[1].data, rtol=1e-12)

    def test_param_views_alias_flat_buffer(self):
        params = self._params(3)
        optimizer = Adam(params, lr=1e-2)
        group = optimizer._groups[0]
        for param in params:
            assert param.data.base is group.flat

    def test_clip_gradients_contract_preserved(self):
        # The public clip_gradients still mutates per-param grads and
        # returns the pre-clip norm (tier-1 relies on this).
        params = self._params(4)
        optimizer = Adam(params, lr=1e-2, clip_norm=1.0)
        for param in params:
            param.grad = np.ones_like(param.data)
        norm = optimizer.clip_gradients()
        total = float(sum((p.grad**2).sum() for p in params))
        assert norm > 1.0
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_mixed_dtype_groups(self):
        p32 = ag.Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        p64 = ag.Tensor(np.ones(3), requires_grad=True)
        optimizer = Adam([p32, p64], lr=1e-2)
        p32.grad = np.full((2, 2), 0.5, dtype=np.float32)
        p64.grad = np.full(3, 0.5)
        optimizer.step()
        assert p32.data.dtype == np.float32
        assert p64.data.dtype == np.float64
        assert (p32.data < 1.0).all() and (p64.data < 1.0).all()


class TestDtypePolicy:
    def test_float32_training_stays_float32(self):
        dataset = toy_dataset()
        model = toy_model(dataset)
        config = TrainConfig(epochs=2, batch_size=6, lr=5e-3, dtype="float32")
        result = train_model(model, dataset, None, config)
        assert str(model.dtype) == "float32"
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        assert np.isfinite(result.train_losses).all()
        loss = model.loss(dataset.batch_of(dataset.examples))
        assert loss.data.dtype == np.float32
        loss.backward()
        assert all(
            p.grad is None or p.grad.dtype == np.float32
            for p in model.parameters()
        )

    def test_float64_config_reproduces_reference_engine(self):
        # fused float64 vs the reference engine (unfused + ReferenceAdam):
        # loss curves agree to ~1e-6 per epoch (the ISSUE's parity bar).
        dataset = toy_dataset()
        losses = {}
        for fused in (True, False):
            model = toy_model(dataset)
            config = TrainConfig(
                epochs=4, batch_size=4, lr=5e-3, seed=0,
                dtype="float64", fused=fused,
            )
            losses[fused] = train_model(model, dataset, None, config).train_losses
        np.testing.assert_allclose(losses[True], losses[False], atol=1e-6)

    def test_training_is_deterministic_across_runs(self):
        dataset = toy_dataset()
        curves = []
        for _ in range(2):
            model = toy_model(dataset)
            config = TrainConfig(epochs=3, batch_size=4, lr=5e-3, seed=11)
            curves.append(train_model(model, dataset, None, config).train_losses)
        assert curves[0] == curves[1]

    def test_bucketed_batches_deterministic(self):
        dataset = toy_dataset(12)
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(5)
            runs.append(dataset.batches(4, rng))
        assert len(runs[0]) == len(runs[1])
        for a, b in zip(runs[0], runs[1]):
            np.testing.assert_array_equal(a.src_ids, b.src_ids)
            np.testing.assert_array_equal(a.tgt_in, b.tgt_in)


class TestTokenWeightedLoss:
    def test_epoch_train_loss_matches_evaluate_loss_at_lr_zero(self):
        dataset = toy_dataset(8)
        model = toy_model(dataset)
        config = TrainConfig(
            epochs=1, batch_size=3, lr=0.0, seed=2, dtype="float64"
        )
        result = train_model(model, dataset, None, config)
        reference = evaluate_loss(model, dataset, batch_size=32)
        # Token weighting makes the aggregate invariant to batch
        # composition, so the shuffled size-3 batches must reproduce
        # the one-big-batch statistic.
        assert result.train_losses[0] == pytest.approx(reference, abs=1e-9)


class TestGraphLifecycle:
    def test_no_grad_records_no_graph(self):
        a = ag.Tensor(np.ones(3), requires_grad=True)
        with ag.no_grad():
            out = ag.mul(a, a)
        assert out._parents == ()
        assert not out.requires_grad

    def test_free_graph_keeps_param_grads(self):
        dataset = toy_dataset()
        grads = {}
        for free in (True, False):
            model = toy_model(dataset)
            model.to_dtype("float64")
            loss = model.loss(dataset.batch_of(dataset.examples))
            loss.backward(free_graph=free)
            grads[free] = {
                p.name: p.grad.copy()
                for p in model.parameters()
                if p.grad is not None
            }
        assert grads[True].keys() == grads[False].keys()
        for name in grads[True]:
            np.testing.assert_array_equal(grads[True][name], grads[False][name])

    def test_backward_skips_constant_subgraphs(self):
        const = ag.Tensor(np.ones(4))
        a = ag.Tensor(np.ones(4), requires_grad=True)
        out = sum_all(ag.mul(ag.mul(const, const), a))
        out.backward()
        assert const.grad is None
        np.testing.assert_array_equal(a.grad, np.ones(4))


class TestBatchedDecodeParity:
    def test_batch_decode_matches_per_example(self):
        dataset = toy_dataset()
        model = toy_model(dataset)
        config = TrainConfig(epochs=25, batch_size=6, lr=5e-3, patience=25)
        train_model(model, dataset, None, config)
        bos, eos = dataset.out_vocab.bos_id, dataset.out_vocab.eos_id
        batch = dataset.batch_of(dataset.examples)
        batched = model.greedy_decode_batch(batch, bos, eos, max_len=8)
        singles = []
        for example in dataset.examples:
            single = dataset.batch_of([example])
            singles.extend(model.greedy_decode(single, bos, eos, max_len=8))
        assert batched == singles


class TestPersistRoundTrip:
    def test_dtype_and_optimizer_round_trip(self, tmp_path):
        dataset = toy_dataset()
        model = toy_model(dataset)
        config = TrainConfig(epochs=1, batch_size=6, lr=3e-3, clip_norm=4.0)
        result = train_model(model, dataset, None, config)
        path = save_model(
            model, dataset.in_vocab, dataset.out_vocab,
            tmp_path / "fast_model", optimizer=result.optimizer,
        )
        loaded, in_vocab, out_vocab = load_model(path)
        assert str(loaded.dtype) == "float32"
        assert loaded.checkpoint_meta["dtype"] == "float32"
        hyper = loaded.checkpoint_meta["optimizer"]
        assert hyper["lr"] == pytest.approx(3e-3)
        assert hyper["clip_norm"] == pytest.approx(4.0)
        assert hyper["beta1"] == pytest.approx(0.9)
        for p_old, p_new in zip(model.parameters(), loaded.parameters()):
            assert p_new.data.dtype == np.float32
            np.testing.assert_array_equal(p_old.data, p_new.data)

    def test_legacy_archive_without_new_meta_loads(self, tmp_path):
        # save without an optimizer: meta carries dtype only
        dataset = toy_dataset()
        model = toy_model(dataset)  # stays float64 (no cast requested)
        path = save_model(
            model, dataset.in_vocab, dataset.out_vocab, tmp_path / "plain"
        )
        loaded, _, _ = load_model(path)
        assert str(loaded.dtype) == "float64"
        assert loaded.checkpoint_meta["optimizer"] is None
