"""Additional coverage: grammar validation, serializer internals,
Vega-Lite details, crowd timing, and corpus vocab consistency."""

import numpy as np
import pytest

from repro.grammar.ast_nodes import (
    Attribute,
    Group,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    VisQuery,
)
from repro.grammar.errors import GrammarError
from repro.grammar.validate import validate_query, validate_set_query, vis_arity


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


class TestValidate:
    def test_vis_arity_values(self):
        assert vis_arity("bar") == 2
        assert vis_arity("stacked bar") == 3
        with pytest.raises(GrammarError):
            vis_arity("sunburst")

    def test_bar_needs_two_attributes(self):
        vis = VisQuery("bar", QueryCore(select=(attr("origin"),)))
        with pytest.raises(GrammarError):
            validate_query(vis)

    def test_pie_rejects_order(self):
        vis = VisQuery("pie", QueryCore(
            select=(attr("origin"), attr("*", agg="count")),
            groups=(Group("grouping", attr("origin")),),
            order=Order("asc", attr("origin")),
        ))
        with pytest.raises(GrammarError):
            validate_query(vis)

    def test_bare_attr_must_be_grouped(self):
        vis = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("price")),
            groups=(Group("grouping", attr("destination")),),
        ))
        with pytest.raises(GrammarError):
            validate_query(vis)

    def test_group_attr_must_be_bare(self):
        with pytest.raises(GrammarError):
            validate_query(SQLQuery(QueryCore(
                select=(attr("price", agg="sum"),),
                groups=(Group("grouping", attr("price", agg="sum")),),
            )))

    def test_duplicate_group_column_rejected(self):
        with pytest.raises(GrammarError):
            validate_query(SQLQuery(QueryCore(
                select=(attr("origin"), attr("*", agg="count")),
                groups=(
                    Group("grouping", attr("origin")),
                    Group("grouping", attr("origin")),
                ),
            )))

    def test_subquery_arity_enforced(self):
        from repro.grammar.ast_nodes import InSubquery, Filter

        sub = QueryCore(select=(attr("origin"), attr("price")))
        query = SQLQuery(QueryCore(
            select=(attr("fno"),),
            filter=Filter(InSubquery(attr("origin"), sub)),
        ))
        with pytest.raises(GrammarError):
            validate_query(query)

    def test_set_query_arity(self):
        body = SetQuery(
            op="union",
            left=QueryCore(select=(attr("a", table="t"),)),
            right=QueryCore(select=(attr("a", table="t"), attr("b", table="t"))),
        )
        with pytest.raises(GrammarError):
            validate_set_query(body)

    def test_superlative_vis_is_valid(self):
        vis = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("origin")),),
            superlative=Superlative("most", 3, attr("price", agg="sum")),
        ))
        validate_query(vis)


class TestVegaLiteDetails:
    def test_ascending_sort_on_x(self, flight_db):
        from repro.vis import to_vega_lite

        vis = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("origin")),),
            order=Order("asc", attr("origin")),
        ))
        spec = to_vega_lite(vis, flight_db)
        assert spec["encoding"]["x"]["sort"] == "x"

    def test_grouping_line_color_channel(self, flight_db):
        from repro.vis import to_vega_lite

        vis = VisQuery("grouping line", QueryCore(
            select=(
                attr("departure_date"),
                attr("price", agg="sum"),
                attr("origin"),
            ),
            groups=(
                Group("binning", attr("departure_date"), bin_unit="year"),
                Group("grouping", attr("origin")),
            ),
        ))
        spec = to_vega_lite(vis, flight_db)
        assert spec["mark"] == "line"
        assert spec["encoding"]["color"]["field"] == "flight_origin"
        assert "stack" not in spec["encoding"]["y"]


class TestCrowdTimingEdges:
    def test_t3_times_deterministic(self):
        from repro.eval.crowd import HumanStudySimulator

        sim = HumanStudySimulator()
        a = sim.t3_times(20, np.random.default_rng(3))
        b = sim.t3_times(20, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_interrater_sample_caps_at_population(self, small_nvbench):
        from repro.eval.crowd import (
            HumanStudySimulator, StudyConfig, interrater_sample,
        )

        sim = HumanStudySimulator(StudyConfig(sample_fraction=0.02, seed=1))
        result = sim.run(small_nvbench.pairs)
        sample = interrater_sample(result, sample=10_000)
        assert len(sample) == len(result.rated)


class TestVocabCatalogConsistency:
    def test_no_sql_keyword_collisions(self):
        """Table and column names must not collide with SQL keywords
        (the lexer uppercases keywords, which would break parsing)."""
        from repro.spider.vocab import ARCHETYPES, DOMAINS
        from repro.sqlparse.lexer import KEYWORDS

        keywords = {k.lower() for k in KEYWORDS}
        for domain in DOMAINS:
            for table_noun, _ in domain.tables:
                assert table_noun.lower() not in keywords, table_noun
        for pool in ARCHETYPES.values():
            for column_name, _, _ in pool:
                assert column_name.lower() not in keywords, column_name

    def test_archetype_kinds_all_have_generators(self):
        from repro.spider.datagen import _VALUE_MAKERS
        from repro.spider.vocab import ARCHETYPES

        for pool in ARCHETYPES.values():
            for _, _, kind in pool:
                assert kind in _VALUE_MAKERS, kind

    def test_archetype_types_are_valid(self):
        from repro.spider.vocab import ARCHETYPES

        for pool in ARCHETYPES.values():
            for _, ctype, _ in pool:
                assert ctype in ("C", "T", "Q")


class TestAsciiEdges:
    def test_empty_chart(self, flight_db):
        from repro.grammar.ast_nodes import Comparison, Filter
        from repro.vis import to_ascii

        vis = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("price")),
            filter=Filter(Comparison(">", attr("price"), 10_000)),
        ))
        assert "empty" in to_ascii(vis, flight_db) or to_ascii(vis, flight_db)

    def test_width_respected(self, flight_db):
        from repro.vis import to_ascii

        vis = VisQuery("bar", QueryCore(
            select=(attr("origin"), attr("price", agg="sum")),
            groups=(Group("grouping", attr("origin")),),
        ))
        text = to_ascii(vis, flight_db, width=10)
        for line in text.splitlines()[1:]:
            bar = line.split("| ", 1)[-1].split(" ")[0]
            assert len(bar) <= 10
