"""Tests for the seq2vis dataset encoding and batching."""

import numpy as np
import pytest

from repro.neural.data import (
    MAX_NL_TOKENS,
    MAX_SCHEMA_TOKENS,
    SEP_TOKEN,
    build_dataset,
    encode_example,
    schema_tokens,
)
from repro.nlp.vocab import Vocabulary


@pytest.fixture()
def dataset(small_nvbench):
    return build_dataset(small_nvbench.pairs[:60], small_nvbench.databases)


class TestEncoding:
    def test_example_structure(self, small_nvbench):
        pair = small_nvbench.pairs[0]
        database = small_nvbench.database_of(pair)
        example = encode_example(pair, database)
        assert SEP_TOKEN in example.src_tokens
        assert example.tgt_tokens[0] in ("visualize",)
        assert example.pair is pair

    def test_schema_tokens_qualified_and_capped(self, small_nvbench):
        for database in list(small_nvbench.databases.values())[:3]:
            tokens = schema_tokens(database)
            assert len(tokens) <= MAX_SCHEMA_TOKENS
            assert all("." in token for token in tokens)

    def test_nl_truncation(self, small_nvbench):
        pair = small_nvbench.pairs[0]
        database = small_nvbench.database_of(pair)
        example = encode_example(pair, database)
        sep = example.src_tokens.index(SEP_TOKEN)
        assert sep <= MAX_NL_TOKENS

    def test_values_are_masked_in_targets(self, dataset):
        for example in dataset.examples:
            for token in example.tgt_tokens:
                assert not token.startswith('"') or token == "<V>"


class TestBatching:
    def test_padding_and_masks(self, dataset):
        batch = dataset.batch_of(dataset.examples[:7])
        assert batch.src_ids.shape == batch.src_mask.shape
        assert batch.tgt_in.shape == batch.tgt_out.shape == batch.tgt_mask.shape
        for row, example in enumerate(dataset.examples[:7]):
            n_src = len(example.src_tokens)
            assert batch.src_mask[row, :n_src].all()
            assert not batch.src_mask[row, n_src:].any()
            n_tgt = len(example.tgt_tokens) + 1  # +EOS
            assert batch.tgt_mask[row, :n_tgt].all()

    def test_teacher_forcing_alignment(self, dataset):
        batch = dataset.batch_of(dataset.examples[:4])
        vocab = dataset.out_vocab
        for row, example in enumerate(dataset.examples[:4]):
            assert batch.tgt_in[row, 0] == vocab.bos_id
            steps = len(example.tgt_tokens)
            assert batch.tgt_out[row, steps] == vocab.eos_id
            # Shifted by one: tgt_in[t+1] == tgt_out[t] for real steps.
            np.testing.assert_array_equal(
                batch.tgt_in[row, 1 : steps + 1], batch.tgt_out[row, :steps]
            )

    def test_src_out_ids_map_schema_tokens(self, dataset):
        batch = dataset.batch_of(dataset.examples[:4])
        vocab = dataset.out_vocab
        for row, example in enumerate(dataset.examples[:4]):
            for col, token in enumerate(example.src_tokens):
                expected = vocab.id_of(token)
                assert batch.src_out_ids[row, col] == expected
            # Schema tokens that appear in targets are NOT unk.
            schema_part = example.src_tokens[
                example.src_tokens.index(SEP_TOKEN) + 1 :
            ]
            mappable = [t for t in schema_part if t in vocab.tokens]
            if mappable:
                assert any(
                    vocab.id_of(t) != vocab.unk_id for t in mappable
                )

    def test_bucketed_batches_cover_everything(self, dataset):
        rng = np.random.default_rng(0)
        batches = dataset.batches(8, rng)
        total = sum(batch.src_ids.shape[0] for batch in batches)
        assert total == len(dataset.examples)

    def test_shared_vocab_reuse(self, small_nvbench, dataset):
        other = build_dataset(
            small_nvbench.pairs[60:80],
            small_nvbench.databases,
            dataset.in_vocab,
            dataset.out_vocab,
        )
        assert other.in_vocab is dataset.in_vocab
        assert other.out_vocab is dataset.out_vocab
