"""Serialization round-trip tests, including property-based coverage of
randomly generated trees (the decoder must parse anything the encoder can
emit — the seq2vis evaluation depends on this)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.ast_nodes import (
    Attribute,
    Between,
    Comparison,
    Filter,
    Group,
    InSubquery,
    Like,
    LogicalPredicate,
    Order,
    QueryCore,
    SetQuery,
    SQLQuery,
    Superlative,
    SubqueryComparison,
    VisQuery,
)
from repro.grammar.errors import ParseError
from repro.grammar.serialize import VALUE_TOKEN, from_tokens, to_text, to_tokens


def attr(column="price", table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


class TestBasicForms:
    def test_simple_select(self):
        q = SQLQuery(QueryCore(select=(attr("origin"),)))
        assert to_text(q) == "select flight.origin"

    def test_vis_query_prefix(self):
        q = VisQuery("pie", QueryCore(select=(attr("origin"), attr(agg="count", column="*"))))
        assert to_text(q).startswith("visualize pie select")

    def test_multiword_vis_types_use_underscores(self):
        q = VisQuery(
            "stacked bar",
            QueryCore(select=(attr("origin"), attr("price", agg="sum"), attr("destination")),
                      groups=(Group("grouping", attr("origin")), Group("grouping", attr("destination")))),
        )
        assert "stacked_bar" in to_tokens(q)

    def test_masking_replaces_values(self):
        q = SQLQuery(QueryCore(
            select=(attr("origin"),),
            filter=Filter(Comparison(">", attr("price"), 250)),
        ))
        tokens = to_tokens(q, mask_values=True)
        assert VALUE_TOKEN in tokens
        assert "250" not in tokens

    def test_superlative_k_is_never_masked(self):
        q = SQLQuery(QueryCore(
            select=(attr("price"),),
            superlative=Superlative("most", 5, attr("price")),
        ))
        tokens = to_tokens(q, mask_values=True)
        assert "5" in tokens

    def test_string_values_are_quoted(self):
        q = SQLQuery(QueryCore(
            select=(attr("origin"),),
            filter=Filter(Comparison("=", attr("origin"), "New York")),
        ))
        assert '"New York"' in to_tokens(q)


class TestParseErrors:
    def test_empty_sequence(self):
        with pytest.raises(ParseError):
            from_tokens([])

    def test_unknown_vis_type(self):
        with pytest.raises(ParseError):
            from_tokens(["visualize", "donut", "select", "t.c"])

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            from_tokens(["select", "t.c", "t.d"])

    def test_unqualified_column(self):
        with pytest.raises(ParseError):
            from_tokens(["select", "price"])

    def test_group_without_operations(self):
        with pytest.raises(ParseError):
            from_tokens(["select", "t.c", "group", "order", "asc", "t.c"])

    def test_bad_predicate_head(self):
        with pytest.raises(ParseError):
            from_tokens(["select", "t.c", "filter", "near", "t.c", "5"])


# ----- property-based round-trips ------------------------------------------

_columns = st.sampled_from(["price", "origin", "destination", "departure_date"])
_tables = st.sampled_from(["flight", "airline"])
_aggs = st.sampled_from([None, "max", "min", "count", "sum", "avg"])
_values = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
        min_size=1,
        max_size=8,
    ),
)


@st.composite
def attributes(draw, allow_agg=True):
    agg = draw(_aggs) if allow_agg else None
    return Attribute(column=draw(_columns), table=draw(_tables), agg=agg)


@st.composite
def predicates(draw, depth=0):
    if depth < 2 and draw(st.booleans()) and draw(st.booleans()):
        return LogicalPredicate(
            op=draw(st.sampled_from(["and", "or"])),
            left=draw(predicates(depth=depth + 1)),
            right=draw(predicates(depth=depth + 1)),
        )
    kind = draw(st.sampled_from(["cmp", "between", "like", "in", "subcmp"]))
    target = draw(attributes(allow_agg=False))
    if kind == "cmp":
        return Comparison(
            op=draw(st.sampled_from([">", "<", ">=", "<=", "=", "!="])),
            attr=target,
            value=draw(_values),
        )
    if kind == "between":
        return Between(attr=target, low=draw(_values), high=draw(_values))
    if kind == "like":
        return Like(attr=target, pattern=draw(st.text(min_size=1, max_size=6)), negated=draw(st.booleans()))
    sub = QueryCore(select=(draw(attributes()),))
    if kind == "in":
        return InSubquery(attr=target, query=sub, negated=draw(st.booleans()))
    return SubqueryComparison(op=draw(st.sampled_from([">", "<", "="])), attr=target, query=sub)


@st.composite
def query_cores(draw):
    select = tuple(draw(st.lists(attributes(), min_size=1, max_size=3)))
    filter_ = Filter(draw(predicates())) if draw(st.booleans()) else None
    groups = ()
    if draw(st.booleans()):
        group_attr = draw(attributes(allow_agg=False))
        kind = draw(st.sampled_from(["grouping", "binning"]))
        if kind == "binning":
            unit = draw(st.sampled_from(["year", "quarter", "month", "weekday", "hour", "minute", "numeric"]))
            groups = (Group(kind="binning", attr=group_attr, bin_unit=unit),)
        else:
            groups = (Group(kind="grouping", attr=group_attr),)
    order = None
    superlative = None
    if draw(st.booleans()):
        if draw(st.booleans()):
            order = Order(direction=draw(st.sampled_from(["asc", "desc"])), attr=draw(attributes()))
        else:
            superlative = Superlative(
                kind=draw(st.sampled_from(["most", "least"])),
                k=draw(st.integers(min_value=1, max_value=20)),
                attr=draw(attributes()),
            )
    return QueryCore(select=select, filter=filter_, groups=groups, order=order, superlative=superlative)


@st.composite
def queries(draw):
    if draw(st.booleans()):
        body = draw(query_cores())
    else:
        body = SetQuery(
            op=draw(st.sampled_from(["intersect", "union", "except"])),
            left=draw(query_cores()),
            right=draw(query_cores()),
        )
    return SQLQuery(body=body)


class TestRoundTripProperties:
    @settings(max_examples=120, deadline=None)
    @given(queries())
    def test_sql_query_round_trip(self, query):
        assert from_tokens(to_tokens(query)) == query

    @settings(max_examples=60, deadline=None)
    @given(query_cores(), st.sampled_from(["bar", "pie", "line", "scatter"]))
    def test_vis_query_round_trip(self, core, vis_type):
        query = VisQuery(vis_type=vis_type, body=core)
        assert from_tokens(to_tokens(query)) == query

    @settings(max_examples=60, deadline=None)
    @given(queries())
    def test_masked_form_parses(self, query):
        masked = to_tokens(query, mask_values=True)
        reparsed = from_tokens(masked)
        # The masked tree re-serializes to the identical masked sequence.
        assert to_tokens(reparsed, mask_values=True) == masked
