"""Tests for the synthesizer pipeline and the nvBench container."""

import pytest

from repro.core.nvbench import (
    NVBenchConfig,
    build_nvbench,
    load_nvbench_pairs,
    save_nvbench_pairs,
)
from repro.core.synthesizer import NL2VISSynthesizer
from repro.grammar.validate import validate_query
from repro.spider.corpus import CorpusConfig
from repro.storage.executor import Executor


class TestSynthesizer:
    def test_produces_multiple_pairs_per_input(self, flight_db):
        synthesizer = NL2VISSynthesizer(seed=1)
        pairs = synthesizer.synthesize(
            "What are the origin and price of all flights?",
            "SELECT origin, price FROM flight",
            flight_db,
        )
        assert len(pairs) >= 2
        assert len({pair.vis for pair in pairs}) >= 1

    def test_pairs_carry_provenance(self, flight_db):
        synthesizer = NL2VISSynthesizer(seed=1)
        pairs = synthesizer.synthesize(
            "Show the price of each flight by origin.",
            "SELECT origin, price FROM flight",
            flight_db,
        )
        for pair in pairs:
            assert pair.db_name == "flights"
            assert pair.source_sql == "SELECT origin, price FROM flight"
            assert pair.hardness is not None

    def test_every_vis_is_valid_and_executable(self, flight_db):
        synthesizer = NL2VISSynthesizer(seed=2)
        pairs = synthesizer.synthesize(
            "List origin, destination and price of flights.",
            "SELECT origin, destination, price FROM flight",
            flight_db,
        )
        for pair in pairs:
            validate_query(pair.vis)
            result = Executor(flight_db).execute(pair.vis)
            assert result.row_count > 0

    def test_deterministic_given_seed(self, flight_db):
        def run():
            return NL2VISSynthesizer(seed=9).synthesize(
                "Show the origin and price of all flights.",
                "SELECT origin, price FROM flight",
                flight_db,
            )

        first, second = run(), run()
        assert [p.nl for p in first] == [p.nl for p in second]
        assert [p.vis for p in first] == [p.vis for p in second]

    def test_max_vis_per_query_cap(self, flight_db):
        synthesizer = NL2VISSynthesizer(seed=1, max_vis_per_query=1)
        pairs = synthesizer.synthesize(
            "Show the origin and price of all flights.",
            "SELECT origin, price FROM flight",
            flight_db,
        )
        assert len({pair.vis for pair in pairs}) <= 1

    def test_accepts_parsed_query_object(self, flight_db):
        from repro.sqlparse import parse_sql

        query = parse_sql("SELECT origin, price FROM flight", flight_db)
        synthesizer = NL2VISSynthesizer(seed=1)
        pairs = synthesizer.synthesize("Origins and prices.", query, flight_db)
        assert pairs
        # A pre-parsed query is serialized back through the SQL printer,
        # never silently dropped to "".
        assert all(
            pair.source_sql == "SELECT flight.origin, flight.price FROM flight"
            for pair in pairs
        )

    def test_unfilterable_query_yields_nothing(self, flight_db):
        # A query returning a single value cannot make a good chart.
        synthesizer = NL2VISSynthesizer(seed=1)
        pairs = synthesizer.synthesize(
            "How many flights are there?",
            "SELECT COUNT(*) FROM flight",
            flight_db,
        )
        assert pairs == []


class TestNVBench:
    def test_pairs_reference_known_databases(self, small_nvbench):
        for pair in small_nvbench.pairs:
            assert pair.db_name in small_nvbench.databases

    def test_distinct_vis_counts(self, small_nvbench):
        distinct = small_nvbench.distinct_vis
        assert 0 < len(distinct) <= len(small_nvbench.pairs)
        assert sum(small_nvbench.vis_type_counts().values()) == len(distinct)

    def test_every_benchmark_vis_executes(self, small_nvbench):
        seen = set()
        for pair in small_nvbench.pairs:
            key = (pair.db_name, pair.vis)
            if key in seen:
                continue
            seen.add(key)
            db = small_nvbench.database_of(pair)
            assert Executor(db).execute(pair.vis).row_count > 0

    def test_nl_variants_are_mostly_distinct(self, small_nvbench):
        # Per-call distinctness is unit-tested in test_core_nl_edits; at
        # benchmark level the corpus may sample the same source query
        # twice, so only bound the overall duplicate rate.
        groups = {}
        for pair in small_nvbench.pairs:
            groups.setdefault((pair.db_name, pair.vis), []).append(pair.nl)
        duplicates = sum(
            len(nls) - len(set(nls)) for nls in groups.values()
        )
        assert duplicates / len(small_nvbench.pairs) < 0.10

    def test_build_without_trained_filter(self):
        bench = build_nvbench(config=NVBenchConfig(
            corpus=CorpusConfig(
                num_databases=2, pairs_per_database=4, row_scale=0.3, seed=3
            ),
            train_filter=False,
        ))
        assert bench.pairs

    def test_save_load_round_trip(self, small_nvbench, tmp_path):
        path = tmp_path / "pairs.json"
        save_nvbench_pairs(small_nvbench, str(path))
        loaded = load_nvbench_pairs(small_nvbench.corpus, str(path))
        assert len(loaded.pairs) == len(small_nvbench.pairs)
        for original, reloaded in zip(small_nvbench.pairs, loaded.pairs):
            assert original.vis == reloaded.vis
            assert original.nl == reloaded.nl
            assert original.hardness == reloaded.hardness
