"""Tests for the VIS backends (Vega-Lite and ECharts compilation)."""

import json

import pytest

from repro.grammar.ast_nodes import Attribute, Group, Order, QueryCore, VisQuery
from repro.vis import render_data, to_echarts, to_vega_lite


def attr(column, table="flight", agg=None):
    return Attribute(column=column, table=table, agg=agg)


@pytest.fixture()
def pie(flight_db):
    return VisQuery("pie", QueryCore(
        select=(attr("origin"), attr("*", agg="count")),
        groups=(Group("grouping", attr("origin")),),
    ))


@pytest.fixture()
def grouped_bar(flight_db):
    return VisQuery("bar", QueryCore(
        select=(attr("origin"), attr("price", agg="sum")),
        groups=(Group("grouping", attr("origin")),),
        order=Order("desc", attr("price", agg="sum")),
    ))


@pytest.fixture()
def stacked(flight_db):
    return VisQuery("stacked bar", QueryCore(
        select=(attr("origin"), attr("price", agg="sum"), attr("destination")),
        groups=(
            Group("grouping", attr("origin")),
            Group("grouping", attr("destination")),
        ),
    ))


class TestRenderData:
    def test_channels(self, flight_db, grouped_bar):
        data = render_data(grouped_bar, flight_db)
        assert data.x_channel == "nominal"
        assert data.y_channel == "quantitative"
        assert data.rows

    def test_binned_axis_is_ordinal(self, flight_db):
        vis = VisQuery("bar", QueryCore(
            select=(attr("departure_date"), attr("*", agg="count")),
            groups=(Group("binning", attr("departure_date"), bin_unit="year"),),
        ))
        data = render_data(vis, flight_db)
        assert data.x_channel == "ordinal"

    def test_pivot_fills_missing_cells(self, flight_db, stacked):
        data = render_data(stacked, flight_db)
        xs, table = data.pivot()
        assert all(len(column) == len(xs) for column in table.values())
        assert any(None in column for column in table.values())

    def test_canonical_result_matching(self, flight_db, grouped_bar):
        unordered = VisQuery("bar", QueryCore(
            select=grouped_bar.primary_core.select,
            groups=grouped_bar.primary_core.groups,
        ))
        left = render_data(grouped_bar, flight_db).canonical()
        right = render_data(unordered, flight_db).canonical()
        assert left == right


class TestVegaLite:
    def test_pie_uses_arc_theta(self, flight_db, pie):
        spec = to_vega_lite(pie, flight_db)
        assert spec["mark"] == "arc"
        assert spec["encoding"]["theta"]["type"] == "quantitative"

    def test_bar_encoding_and_sort(self, flight_db, grouped_bar):
        spec = to_vega_lite(grouped_bar, flight_db)
        assert spec["mark"] == "bar"
        assert spec["encoding"]["x"]["sort"] == "-y"

    def test_stacked_bar_has_color_and_stack(self, flight_db, stacked):
        spec = to_vega_lite(stacked, flight_db)
        assert spec["encoding"]["color"]["field"]
        assert spec["encoding"]["y"]["stack"] == "zero"

    def test_values_are_inlined_and_json_serializable(self, flight_db, grouped_bar):
        spec = to_vega_lite(grouped_bar, flight_db)
        assert len(spec["data"]["values"]) == 3
        json.dumps(spec)

    def test_field_names_have_no_dots(self, flight_db, grouped_bar):
        spec = to_vega_lite(grouped_bar, flight_db)
        for value in spec["data"]["values"]:
            assert all("." not in key for key in value)


class TestECharts:
    def test_pie_name_value_pairs(self, flight_db, pie):
        option = to_echarts(pie, flight_db)
        data = option["series"][0]["data"]
        assert {item["name"] for item in data} == {"APG", "LAX", "BOS"}

    def test_bar_category_axis(self, flight_db, grouped_bar):
        option = to_echarts(grouped_bar, flight_db)
        assert option["xAxis"]["type"] == "category"
        assert len(option["series"][0]["data"]) == len(option["xAxis"]["data"])

    def test_stacked_bar_pivots_series(self, flight_db, stacked):
        option = to_echarts(stacked, flight_db)
        assert len(option["series"]) > 1
        assert all(s.get("stack") == "total" for s in option["series"])
        assert "legend" in option

    def test_scatter_value_axes(self, flight_db):
        vis = VisQuery("scatter", QueryCore(select=(attr("price"), attr("price"))))
        option = to_echarts(vis, flight_db)
        assert option["xAxis"]["type"] == "value"
        assert option["series"][0]["type"] == "scatter"

    def test_option_is_json_serializable(self, flight_db, stacked):
        json.dumps(to_echarts(stacked, flight_db))

    def test_nvbench_charts_compile(self, small_nvbench):
        """Every synthesized vis compiles to both backends."""
        seen = set()
        for pair in small_nvbench.pairs:
            key = (pair.db_name, pair.vis)
            if key in seen:
                continue
            seen.add(key)
            db = small_nvbench.database_of(pair)
            json.dumps(to_vega_lite(pair.vis, db))
            json.dumps(to_echarts(pair.vis, db))
